package fleet

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"pixel"
	"pixel/api"
)

// Evaluate prices one design point through the fleet. The routing key
// is exactly the worker's request-coalescing key (network + canonical
// point string), so every design point has one home worker and stays
// hot in that worker's result LRU.
func (c *Coordinator) Evaluate(ctx context.Context, req api.EvaluateRequest) (api.Result, error) {
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		return api.Result{}, err
	}
	p := pixel.Point{Design: d, Lanes: req.Lanes, Bits: req.Bits}
	key := req.Network + "|" + p.String()
	return runShard(ctx, c, "/v1/evaluate", key, func(ctx context.Context, cl *api.Client) (api.Result, error) {
		return cl.Evaluate(ctx, req)
	})
}

// Sweep evaluates a grid across the fleet: the request splits into
// cross-product shards, each shard runs on its ring-routed worker with
// retry, failover and hedging, and the responses merge into the
// single-node payload. See planSweep and mergeSweep for why the merge
// is byte-identical.
func (c *Coordinator) Sweep(ctx context.Context, req api.SweepRequest) (api.SweepResponse, error) {
	return c.runSweep(ctx, req, nil)
}

// runSweep is Sweep plus a per-shard observer: onShard sees every
// shard response as it lands (concurrently, shards in any order — the
// observer synchronizes itself) — the coordinator job task uses it to
// build chunked partial results.
func (c *Coordinator) runSweep(ctx context.Context, req api.SweepRequest, onShard func(sweepShard, api.SweepResponse)) (api.SweepResponse, error) {
	shards, points, err := planSweep(req, c.shardTarget())
	if err != nil {
		return api.SweepResponse{}, err
	}
	resps := make([]api.SweepResponse, len(shards))
	run := func(ctx context.Context, i int) error {
		resp, err := runShard(ctx, c, "/v1/sweep", shards[i].Key, func(ctx context.Context, cl *api.Client) (api.SweepResponse, error) {
			return cl.Sweep(ctx, shards[i].Req)
		})
		if err != nil {
			return err
		}
		resps[i] = resp
		if onShard != nil {
			onShard(shards[i], resp)
		}
		return nil
	}
	if err := fanOut(ctx, len(shards), run); err != nil {
		return api.SweepResponse{}, err
	}
	return mergeSweep(req.Networks, points, shards, resps)
}

// Robustness runs a Monte-Carlo variation sweep across the fleet,
// sharded along the σ axis. See planRobustness and mergeRobustness.
func (c *Coordinator) Robustness(ctx context.Context, req api.RobustnessRequest) (api.RobustnessResponse, error) {
	return c.runRobustness(ctx, req, nil)
}

// runRobustness is Robustness plus a per-shard observer (called
// concurrently, shards in any order — the observer synchronizes
// itself).
func (c *Coordinator) runRobustness(ctx context.Context, req api.RobustnessRequest, onShard func(robustShard, api.RobustnessResponse)) (api.RobustnessResponse, error) {
	shards, err := planRobustness(req, c.opts.MaxTrials, c.shardTarget())
	if err != nil {
		return api.RobustnessResponse{}, err
	}
	resps := make([]api.RobustnessResponse, len(shards))
	run := func(ctx context.Context, i int) error {
		resp, err := runShard(ctx, c, "/v1/robustness", shards[i].Key, func(ctx context.Context, cl *api.Client) (api.RobustnessResponse, error) {
			return cl.Robustness(ctx, shards[i].Req)
		})
		if err != nil {
			return err
		}
		resps[i] = resp
		if onShard != nil {
			onShard(shards[i], resp)
		}
		return nil
	}
	if err := fanOut(ctx, len(shards), run); err != nil {
		return api.RobustnessResponse{}, err
	}
	return mergeRobustness(shards, resps)
}

// Map schedules a network onto a tile grid on the request's home
// worker (the schedule is cheap; routing just spreads load and keeps
// repeats cache-warm).
func (c *Coordinator) Map(ctx context.Context, req api.MapRequest) (api.MapResponse, error) {
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		return api.MapResponse{}, err
	}
	p := pixel.Point{Design: d, Lanes: req.Lanes, Bits: req.Bits}
	key := fmt.Sprintf("map|%s|%s|%d|%d|%t", req.Network, p, req.Rows, req.Cols, req.PhotonicWeights)
	return runShard(ctx, c, "/v1/map", key, func(ctx context.Context, cl *api.Client) (api.MapResponse, error) {
		return cl.Map(ctx, req)
	})
}

// Infer forwards a batch to the network's home worker, so all fleet
// traffic for one demo network funnels into one worker's micro-batcher
// and weight caches.
func (c *Coordinator) Infer(ctx context.Context, req api.InferRequest) (api.InferResponse, error) {
	key := "infer|" + strings.ToLower(strings.TrimSpace(req.Network))
	return runShard(ctx, c, "/v1/infer", key, func(ctx context.Context, cl *api.Client) (api.InferResponse, error) {
		return cl.Infer(ctx, req)
	})
}

// fanOut runs fn for every shard index concurrently and returns the
// first error, cancelling the rest.
func fanOut(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n == 1 {
		return fn(ctx, 0)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := fn(ctx, i)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
