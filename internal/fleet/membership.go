package fleet

import (
	"net/http"

	"pixel/api"
)

// AddWorker admits a new fleet member at runtime and rebuilds the
// consistent-hash ring. The membership swap is copy-on-write: shards
// already in flight keep the candidate snapshot they routed with, so
// nothing is dropped — only new shards see the new ring. The worker
// starts healthy (optimistically, like the initial set) and is probed
// from the next sweep.
func (c *Coordinator) AddWorker(addr string) error {
	if addr == "" {
		return badRequestf("worker address must be non-empty")
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	for _, w := range c.members {
		if w.name == addr {
			return &httpError{status: http.StatusConflict, code: "conflict",
				msg: "worker " + addr + " is already a fleet member"}
		}
	}
	members := make([]*worker, 0, len(c.members)+1)
	members = append(members, c.members...)
	members = append(members, c.newWorker(addr))
	c.members = members
	c.ring = newRing(memberNames(members))
	c.metrics.workersAdded.Add(1)
	c.logger.Info("fleet: worker added", "worker", addr, "members", len(members))
	return nil
}

// RemoveWorker retires a member and rebuilds the ring. In-flight
// shards holding the old candidate snapshot may still complete on the
// removed worker; the keys it owned move to its ring successors for
// everything planned afterwards. The last member cannot be removed —
// a coordinator with no workers serves nothing.
func (c *Coordinator) RemoveWorker(addr string) error {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	idx := -1
	for i, w := range c.members {
		if w.name == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return &httpError{status: http.StatusNotFound, code: "not_found",
			msg: "no fleet member " + addr}
	}
	if len(c.members) == 1 {
		return &httpError{status: http.StatusConflict, code: "conflict",
			msg: "cannot remove the last fleet member"}
	}
	members := make([]*worker, 0, len(c.members)-1)
	members = append(members, c.members[:idx]...)
	members = append(members, c.members[idx+1:]...)
	c.members = members
	c.ring = newRing(memberNames(members))
	c.metrics.workersRemoved.Add(1)
	c.logger.Info("fleet: worker removed", "worker", addr, "members", len(members))
	return nil
}

// Workers snapshots the roster with each member's health and breaker
// state — the GET /v1/fleet/workers payload.
func (c *Coordinator) Workers() []api.FleetWorker {
	members, _ := c.membership()
	out := make([]api.FleetWorker, 0, len(members))
	for _, w := range members {
		out = append(out, api.FleetWorker{
			Addr:    w.name,
			Healthy: w.healthy.Load(),
			Breaker: w.br.status(),
		})
	}
	return out
}

func memberNames(members []*worker) []string {
	names := make([]string, len(members))
	for i, w := range members {
		names[i] = w.name
	}
	return names
}

// breakersOpen counts members whose breaker currently refuses calls
// (the /metrics gauge).
func (c *Coordinator) breakersOpen() int {
	members, _ := c.membership()
	n := 0
	for _, w := range members {
		if w.br.isOpen() {
			n++
		}
	}
	return n
}

func (c *Coordinator) handleWorkersList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, api.FleetWorkersResponse{Workers: c.Workers()})
}

func (c *Coordinator) handleWorkerAdd(w http.ResponseWriter, r *http.Request) {
	var req api.FleetWorkerRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := c.AddWorker(req.Addr); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FleetWorkersResponse{Workers: c.Workers()})
}

// handleWorkerRemove takes the address in the body (worker addresses
// are URLs — a path segment would need double escaping).
func (c *Coordinator) handleWorkerRemove(w http.ResponseWriter, r *http.Request) {
	var req api.FleetWorkerRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := c.RemoveWorker(req.Addr); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.FleetWorkersResponse{Workers: c.Workers()})
}
