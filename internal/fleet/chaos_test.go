package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pixel"
	"pixel/api"
	"pixel/internal/server"
)

// compactJSON re-encodes b without whitespace. A coordinator job's
// Result is json.Marshal of the merged response (compact), while the
// synchronous route indents — compacting the sync body makes the two
// byte-comparable without losing the float64 round-trip guarantee.
func compactJSON(t *testing.T, b []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, b); err != nil {
		t.Fatalf("compact: %v (body %.200s)", err, b)
	}
	return buf.Bytes()
}

// waitJob polls the coordinator until the job reaches a terminal state.
func waitJob(t *testing.T, cl *api.Client, id string) api.JobStatusResponse {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := cl.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case api.JobStateSucceeded, api.JobStateFailed, api.JobStateCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q (%d/%d)", st.State, st.Done, st.Total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// partialPoints counts the σ points a running robustness job has landed.
func partialPoints(t *testing.T, cl *api.Client, id string) int {
	t.Helper()
	st, err := cl.Job(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Partial) == 0 {
		return 0
	}
	var pts []api.JobPoint
	if err := json.Unmarshal(st.Partial, &pts); err != nil {
		t.Fatal(err)
	}
	return len(pts)
}

// robustness10 is a 10-point σ axis with a protection curve — enough
// per-point work (at the given trial count) that a kill lands mid-job.
func robustness10(trials int) api.RobustnessRequest {
	return api.RobustnessRequest{
		Network: "LeNet", Design: "OO",
		Sigmas:     []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10},
		Trials:     trials,
		Seed:       11,
		Protection: &api.ProtectionSpec{Scheme: "parity"},
	}
}

// TestChaosFaultClassesByteIdentical drives the synchronous fan-out
// routes through the seeded chaos transport, one fault class per
// subtest, and requires the merged bodies to stay byte-identical to a
// single node while the retry budget stays bounded.
func TestChaosFaultClassesByteIdentical(t *testing.T) {
	workers := startWorkers(t, 2)
	sweepReq := sweep48()
	robReq := api.RobustnessRequest{
		Network: "LeNet", Design: "OO",
		Sigmas:     []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07},
		Trials:     6,
		Seed:       7,
		Protection: &api.ProtectionSpec{Scheme: "parity"},
	}
	status, wantSweep := postJSON(t, workers[0]+"/v1/sweep", sweepReq)
	if status != http.StatusOK {
		t.Fatalf("single node sweep: status %d: %s", status, wantSweep)
	}
	status, wantRob := postJSON(t, workers[0]+"/v1/robustness", robReq)
	if status != http.StatusOK {
		t.Fatalf("single node robustness: status %d: %s", status, wantRob)
	}

	const maxAttempts = 8
	cases := []struct {
		name  string
		cfg   ChaosConfig
		fired func(ChaosCounts) int64
	}{
		{"refuse", ChaosConfig{Seed: 7, RefuseRate: 0.3}, func(c ChaosCounts) int64 { return c.Refused }},
		{"latency", ChaosConfig{Seed: 7, LatencyRate: 0.5, Latency: 2 * time.Millisecond}, func(c ChaosCounts) int64 { return c.Delayed }},
		{"error-5xx", ChaosConfig{Seed: 7, Err5xxRate: 0.3}, func(c ChaosCounts) int64 { return c.Err5xx }},
		{"error-5xx-burst", ChaosConfig{Seed: 7, Err5xxRate: 0.15, Err5xxBurst: 3}, func(c ChaosCounts) int64 { return c.Err5xx }},
		{"truncate", ChaosConfig{Seed: 7, TruncateRate: 0.3}, func(c ChaosCounts) int64 { return c.Truncated }},
		{"corrupt", ChaosConfig{Seed: 7, CorruptRate: 0.3}, func(c ChaosCounts) int64 { return c.Corrupted }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ct := NewChaosTransport(tc.cfg, nil)
			c := newTestCoordinator(t, Options{
				Workers:       workers,
				HTTPClient:    &http.Client{Transport: ct},
				MaxAttempts:   maxAttempts,
				RetryMaxDelay: 5 * time.Millisecond,
				ProbeInterval: time.Hour, // probes must not consume fault draws or evict
			})
			ts := httptest.NewServer(c.Handler())
			defer ts.Close()

			status, got := postJSON(t, ts.URL+"/v1/sweep", sweepReq)
			if status != http.StatusOK {
				t.Fatalf("sweep under chaos: status %d: %.300s", status, got)
			}
			if !bytes.Equal(got, wantSweep) {
				t.Fatal("sweep body differs from single node under chaos")
			}
			status, got = postJSON(t, ts.URL+"/v1/robustness", robReq)
			if status != http.StatusOK {
				t.Fatalf("robustness under chaos: status %d: %.300s", status, got)
			}
			if !bytes.Equal(got, wantRob) {
				t.Fatal("robustness body differs from single node under chaos")
			}

			if n := tc.fired(ct.Counts()); n == 0 {
				t.Fatalf("fault class never fired: %+v", ct.Counts())
			}
			// Two fan-outs of healthy×ShardsPerWorker arms, each arm bounded
			// by the attempt budget: retries past that bound would mean the
			// executor loops beyond its contract.
			maxRetries := int64(2*2*DefaultShardsPerWorker) * int64(maxAttempts-1)
			if r := c.metrics.retries.Load(); r > maxRetries {
				t.Fatalf("retries = %d, want <= %d", r, maxRetries)
			}
		})
	}
}

// TestChaosSSECutRobustnessJob severs the coordinator→worker job event
// streams mid-event, repeatedly. The Last-Event-ID reconnect plus the
// partial poll must still converge on the exact single-node payload.
func TestChaosSSECutRobustnessJob(t *testing.T) {
	workers := startWorkers(t, 2)
	req := robustness10(512)
	status, want := postJSON(t, workers[0]+"/v1/robustness", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	ct := NewChaosTransport(ChaosConfig{Seed: 3, SSECutRate: 0.9, SSECutAfter: 2048}, nil)
	c := newTestCoordinator(t, Options{
		Workers:       workers,
		HTTPClient:    &http.Client{Transport: ct},
		RetryMaxDelay: 5 * time.Millisecond,
		ProbeInterval: time.Hour,
	})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl := api.NewClient(ts.URL, nil)

	h, err := cl.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindRobustness, Robustness: &req})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, cl, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("job failed under SSE cuts: %s", st.Error)
	}
	if !bytes.Equal(compactJSON(t, st.Result), compactJSON(t, want)) {
		t.Fatal("job result differs from single node under SSE cuts")
	}
	if ct.Counts().SSECut == 0 {
		t.Fatalf("no SSE stream was ever cut: %+v", ct.Counts())
	}
}

// TestRobustnessJobSalvageOnWorkerDeath kills the only worker mid-job
// once at least one σ point has streamed back, then admits a fresh
// worker. The job must finish with the single-node payload, keeping
// the dead worker's landed points and re-running strictly fewer units
// than the σ axis holds.
func TestRobustnessJobSalvageOnWorkerDeath(t *testing.T) {
	spare := startWorker(t) // the replacement, and the single-node oracle
	req := robustness10(2048)
	status, want := postJSON(t, spare.URL+"/v1/robustness", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	// The dying worker is a real jobs-enabled pixeld behind a kill
	// switch: once killed, every connection (jobs, polls, probes) drops
	// cold, which is a SIGKILL's view from the wire.
	dyingSrv := server.New(server.Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{}),
		Robust: server.RobustnessFunc(func(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
			return pixel.RobustnessContext(ctx, spec)
		}),
		Jobs:   &server.JobsConfig{MaxRunning: 8},
		Logger: discardLogger(),
	})
	inner := dyingSrv.Handler()
	var killed atomic.Bool
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
				}
			}
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		dying.Close()
		dyingSrv.Close()
	})

	c := newTestCoordinator(t, Options{
		Workers:            []string{dying.URL},
		ProbeInterval:      20 * time.Millisecond,
		ProbeFailThreshold: 2,
		RetryMaxDelay:      10 * time.Millisecond,
	})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl := api.NewClient(ts.URL, nil)

	h, err := cl.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindRobustness, Robustness: &req})
	if err != nil {
		t.Fatal(err)
	}
	total := len(req.Sigmas)
	deadline := time.Now().Add(60 * time.Second)
	landed := 0
	for landed == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no σ point ever landed before the kill")
		}
		landed = partialPoints(t, cl, h.ID)
		time.Sleep(time.Millisecond)
	}
	if landed >= total {
		t.Fatalf("job finished (%d/%d points) before the kill window", landed, total)
	}
	killed.Store(true)
	dying.CloseClientConnections()
	if err := c.AddWorker(spare.URL); err != nil {
		t.Fatal(err)
	}

	st := waitJob(t, cl, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("job did not survive the worker death: %s", st.Error)
	}
	if !bytes.Equal(compactJSON(t, st.Result), compactJSON(t, want)) {
		t.Fatal("salvaged job result differs from single node")
	}
	if n := c.metrics.salvageRounds.Load(); n == 0 {
		t.Fatal("no salvage round ran though the worker died mid-job")
	}
	if n := c.metrics.salvagedUnits.Load(); n == 0 {
		t.Fatal("no σ point was salvaged from the dead worker's stream")
	}
	replanned := c.metrics.replannedUnits.Load()
	if replanned < 1 || replanned >= int64(total) {
		t.Fatalf("replanned %d units, want in [1, %d): salvage must re-run strictly fewer than the axis", replanned, total)
	}
	if n := c.metrics.workersAdded.Load(); n != 1 {
		t.Fatalf("workersAdded = %d, want 1", n)
	}
}

// TestCoordinatorRestartResumesFleetJob restarts the coordinator
// process (Close + a fresh Coordinator over the same JobsDir) while a
// fleet robustness job is mid-flight. The second coordinator must
// re-adopt the job, re-dispatch only the missing σ points, finish with
// the single-node payload, and keep the SSE stream seq-continuous
// across the restart for a Last-Event-ID resume.
func TestCoordinatorRestartResumesFleetJob(t *testing.T) {
	workers := startWorkers(t, 2)
	req := robustness10(3072)
	status, want := postJSON(t, workers[0]+"/v1/robustness", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	dir := t.TempDir()
	mkOpts := func() Options {
		return Options{
			Workers:       workers,
			JobsDir:       dir,
			ProbeInterval: 50 * time.Millisecond,
			RetryMaxDelay: 10 * time.Millisecond,
		}
	}

	c1 := newTestCoordinator(t, mkOpts())
	ts1 := httptest.NewServer(c1.Handler())
	cl1 := api.NewClient(ts1.URL, nil)
	h, err := cl1.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindRobustness, Robustness: &req})
	if err != nil {
		t.Fatal(err)
	}

	// Follow the event stream until a σ point lands: that is the proof
	// the job is mid-flight, and its seq is the Last-Event-ID a client
	// would resume with after the restart.
	sctx, scancel := context.WithTimeout(context.Background(), 60*time.Second)
	es, err := cl1.JobEvents(sctx, h.ID, -1)
	if err != nil {
		t.Fatal(err)
	}
	var lastSeq int64 = -1
	for {
		ev, err := es.Next()
		if err != nil {
			t.Fatalf("stream died before a point landed: %v", err)
		}
		lastSeq = ev.Seq
		if ev.Type == api.JobEventPoint {
			break
		}
		if ev.Terminal() {
			t.Fatalf("job finished (event %q) before the restart window", ev.Type)
		}
	}
	es.Close()
	scancel()

	// "SIGKILL" the coordinator: Close flushes the final checkpoint and
	// leaves the persisted state running; the HTTP listener goes away.
	c1.Close()
	ts1.Close()

	c2 := newTestCoordinator(t, mkOpts())
	ts2 := httptest.NewServer(c2.Handler())
	defer ts2.Close()
	cl2 := api.NewClient(ts2.URL, nil)

	st := waitJob(t, cl2, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("re-adopted job failed: %s", st.Error)
	}
	if !st.Adopted {
		t.Fatal("job status does not mark the re-adoption")
	}
	if !bytes.Equal(compactJSON(t, st.Result), compactJSON(t, want)) {
		t.Fatal("resumed job result differs from single node")
	}
	if n := c2.metrics.salvagedUnits.Load(); n == 0 {
		t.Fatal("restart restored no σ points from the checkpoint")
	}
	if n := c2.metrics.salvageRounds.Load(); n == 0 {
		t.Fatal("no salvage round ran on the restarted coordinator")
	}
	total := int64(len(req.Sigmas))
	replanned := c2.metrics.replannedUnits.Load()
	if replanned < 1 || replanned >= total {
		t.Fatalf("replanned %d units after restart, want in [1, %d)", replanned, total)
	}

	// Resume the event stream across the restart with the pre-restart
	// Last-Event-ID: the replay must start past it — first with the
	// "adopted" marker — and stay strictly monotone to the terminal.
	es2, err := cl2.JobEvents(context.Background(), h.ID, lastSeq)
	if err != nil {
		t.Fatal(err)
	}
	defer es2.Close()
	first := true
	prev := lastSeq
	for {
		ev, err := es2.Next()
		if err != nil {
			t.Fatalf("resumed stream died: %v", err)
		}
		if ev.Seq <= prev {
			t.Fatalf("event seq %d not past %d: the restarted log broke monotonicity", ev.Seq, prev)
		}
		prev = ev.Seq
		if first {
			if ev.Type != api.JobEventAdopted {
				t.Fatalf("first resumed event is %q, want %q", ev.Type, api.JobEventAdopted)
			}
			first = false
		}
		if ev.Terminal() {
			if ev.Type != api.JobEventSucceeded {
				t.Fatalf("terminal event %q, want %q", ev.Type, api.JobEventSucceeded)
			}
			break
		}
	}
}

// TestSweepJobSalvageFromCheckpoint drives a sweep task restored from a
// half-complete checkpoint (white-box, the way Recover does) and
// requires it to re-dispatch exactly the missing cells — exercising the
// per-(design,lane) bit-subset re-planner — and still merge the exact
// single-node grid.
func TestSweepJobSalvageFromCheckpoint(t *testing.T) {
	workers := startWorkers(t, 2)
	req := sweep48()
	status, body := postJSON(t, workers[0]+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, body)
	}
	var want api.SweepResponse
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}

	c := newTestCoordinator(t, Options{Workers: workers})
	spec, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	task, err := c.buildJobTask(api.JobKindSweep, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Checkpoint: every even grid row of both networks already priced.
	// The odd rows are the holes — every (design, lane) group keeps a
	// strict bit subset, so the re-planner cannot take the full-grid
	// path.
	var cells []api.JobCell
	for _, n := range req.Networks {
		for i, res := range want.Results[n] {
			if i%2 == 0 {
				cells = append(cells, api.JobCell{Network: n, Index: i, Result: res})
			}
		}
	}
	total := want.Points * len(req.Networks)
	ck, err := json.Marshal(fleetJobCkpt{Kind: api.JobKindSweep, Total: total, Cells: cells})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Restore(ck); err != nil {
		t.Fatal(err)
	}

	res, err := task.Run(context.Background(), func(string, any) {})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := res.(api.SweepResponse)
	if !ok {
		t.Fatalf("task returned %T, want api.SweepResponse", res)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("salvaged sweep differs from the single-node grid")
	}

	if n := c.metrics.salvagedUnits.Load(); n != int64(len(cells)) {
		t.Fatalf("salvagedUnits = %d, want %d (the checkpointed cells)", n, len(cells))
	}
	if n := c.metrics.salvageRounds.Load(); n == 0 {
		t.Fatal("restored task ran no salvage round")
	}
	missing := int64(total - len(cells))
	if n := c.metrics.replannedUnits.Load(); n != missing {
		t.Fatalf("replannedUnits = %d, want exactly the %d missing cells", n, missing)
	}
}

// TestMembershipAddRemove exercises the runtime membership API over
// HTTP: list, admit, duplicate-conflict, retire, not-found and
// last-member refusals — with a byte-identity check after the ring
// grows and the counters on /metrics.
func TestMembershipAddRemove(t *testing.T) {
	workers := startWorkers(t, 2)
	req := sweep48()
	status, want := postJSON(t, workers[0]+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	c := newTestCoordinator(t, Options{Workers: workers[:1]})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl := api.NewClient(ts.URL, nil)
	ctx := context.Background()

	roster, err := cl.FleetWorkers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(roster.Workers) != 1 || roster.Workers[0].Addr != workers[0] ||
		!roster.Workers[0].Healthy || roster.Workers[0].Breaker != "closed" {
		t.Fatalf("initial roster = %+v", roster.Workers)
	}

	roster, err = cl.AddFleetWorker(ctx, workers[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(roster.Workers) != 2 {
		t.Fatalf("roster after add = %+v", roster.Workers)
	}
	wantHTTPError(t, "duplicate add", func() error {
		_, err := cl.AddFleetWorker(ctx, workers[1])
		return err
	}, http.StatusConflict, "conflict")

	status, got := postJSON(t, ts.URL+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("sweep after add: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("sweep body differs from single node after membership change")
	}

	roster, err = cl.RemoveFleetWorker(ctx, workers[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(roster.Workers) != 1 {
		t.Fatalf("roster after remove = %+v", roster.Workers)
	}
	wantHTTPError(t, "remove missing", func() error {
		_, err := cl.RemoveFleetWorker(ctx, workers[1])
		return err
	}, http.StatusNotFound, "not_found")
	wantHTTPError(t, "remove last", func() error {
		_, err := cl.RemoveFleetWorker(ctx, workers[0])
		return err
	}, http.StatusConflict, "conflict")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		"pixelfleet_workers_added_total 1",
		"pixelfleet_workers_removed_total 1",
		"pixelfleet_workers 1",
	} {
		if !strings.Contains(string(metrics), line) {
			t.Errorf("metrics output missing %q", line)
		}
	}
}

// wantHTTPError asserts fn fails with the given status and wire code.
func wantHTTPError(t *testing.T, what string, fn func() error, status int, code string) {
	t.Helper()
	err := fn()
	if err == nil {
		t.Fatalf("%s: no error, want %d %q", what, status, code)
	}
	he, ok := err.(*api.HTTPError)
	if !ok {
		t.Fatalf("%s: error %v (%T), want *api.HTTPError", what, err, err)
	}
	if he.Status != status || he.Code != code {
		t.Fatalf("%s: got %d %q, want %d %q", what, he.Status, he.Code, status, code)
	}
}

// TestNoHealthyWorkersRefusalAndJobParking darkens the whole fleet:
// synchronous fan-out routes must answer 503 no_healthy_workers with a
// Retry-After hint, while an already-submitted fleet job parks instead
// of failing and completes once a worker comes back.
func TestNoHealthyWorkersRefusalAndJobParking(t *testing.T) {
	srv := server.New(server.Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{}),
		Robust: server.RobustnessFunc(func(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
			return pixel.RobustnessContext(ctx, spec)
		}),
		Jobs:   &server.JobsConfig{MaxRunning: 8},
		Logger: discardLogger(),
	})
	inner := srv.Handler()
	var dark atomic.Bool
	wts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && dark.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"status":"draining"}`+"\n")
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		wts.Close()
		srv.Close()
	})

	req := sweep48()
	status, want := postJSON(t, wts.URL+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	c := newTestCoordinator(t, Options{
		Workers:       []string{wts.URL},
		ProbeInterval: 5 * time.Millisecond,
	})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl := api.NewClient(ts.URL, nil)

	dark.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for c.healthyCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker was never evicted")
		}
		time.Sleep(time.Millisecond)
	}

	// Synchronous routes refuse fast with a retry hint.
	syncCases := []struct {
		route string
		body  any
	}{
		{"/v1/sweep", req},
		{"/v1/evaluate", api.EvaluateRequest{Network: "LeNet", Design: "OO", Lanes: 4, Bits: 4}},
	}
	for _, sc := range syncCases {
		route := sc.route
		body, err := json.Marshal(sc.body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+route, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s on a dark fleet: status %d: %s", route, resp.StatusCode, raw)
		}
		if got := resp.Header.Get("Retry-After"); got != "1" {
			t.Fatalf("%s Retry-After = %q, want \"1\"", route, got)
		}
		if !strings.Contains(string(raw), `"no_healthy_workers"`) {
			t.Fatalf("%s error body missing no_healthy_workers code: %s", route, raw)
		}
	}

	// A fleet job parks rather than failing.
	h, err := cl.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindSweep, Sweep: &req})
	if err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for c.metrics.jobsParked.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never parked on the dark fleet")
		}
		time.Sleep(time.Millisecond)
	}
	st, err := cl.Job(context.Background(), h.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobStateRunning && st.State != api.JobStateQueued {
		t.Fatalf("parked job state = %q, want running/queued", st.State)
	}

	// Light comes back: the parked job finishes byte-exact.
	dark.Store(false)
	st = waitJob(t, cl, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("parked job failed after revival: %s", st.Error)
	}
	if !bytes.Equal(compactJSON(t, st.Result), compactJSON(t, want)) {
		t.Fatal("parked job result differs from single node")
	}
}

// TestJobCancellationPropagatesToWorkers cancels a fleet job on the
// coordinator and requires the cancellation to reach the worker's job
// registry as a DELETE on the dispatched shard job.
func TestJobCancellationPropagatesToWorkers(t *testing.T) {
	srv := server.New(server.Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{}),
		Robust: server.RobustnessFunc(func(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
			return pixel.RobustnessContext(ctx, spec)
		}),
		Jobs:   &server.JobsConfig{MaxRunning: 8},
		Logger: discardLogger(),
	})
	inner := srv.Handler()
	var posts, deletes atomic.Int64
	wts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			posts.Add(1)
		case r.Method == http.MethodDelete && strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
			deletes.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		wts.Close()
		srv.Close()
	})

	c := newTestCoordinator(t, Options{Workers: []string{wts.URL}})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl := api.NewClient(ts.URL, nil)

	req := robustness10(4096) // slow enough that the cancel lands mid-run
	h, err := cl.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindRobustness, Robustness: &req})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for posts.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no shard job was ever dispatched to the worker")
		}
		time.Sleep(time.Millisecond)
	}
	if err := cl.DeleteJob(context.Background(), h.ID); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for deletes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancellation never reached the worker's job registry")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := cl.Job(context.Background(), h.ID); err == nil {
		t.Fatal("cancelled job is still queryable on the coordinator")
	} else if he, ok := err.(*api.HTTPError); !ok || he.Status != http.StatusNotFound {
		t.Fatalf("cancelled job lookup = %v, want 404", err)
	}
}

// TestCoordinatorJobSyncFallback runs fleet jobs against workers with
// no job API at all: every shard dispatch answers 501/404 and the task
// must fall back to the synchronous shard path, still producing the
// single-node payload without any salvage round.
func TestCoordinatorJobSyncFallback(t *testing.T) {
	w1 := httptest.NewServer(newWorkerHandler())
	defer w1.Close()
	w2 := httptest.NewServer(newWorkerHandler())
	defer w2.Close()

	sweepReq := sweep48()
	status, wantSweep := postJSON(t, w1.URL+"/v1/sweep", sweepReq)
	if status != http.StatusOK {
		t.Fatalf("single node sweep: status %d", status)
	}
	robReq := robustness10(6)
	status, wantRob := postJSON(t, w1.URL+"/v1/robustness", robReq)
	if status != http.StatusOK {
		t.Fatalf("single node robustness: status %d", status)
	}

	c := newTestCoordinator(t, Options{Workers: []string{w1.URL, w2.URL}})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl := api.NewClient(ts.URL, nil)

	h, err := cl.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindSweep, Sweep: &sweepReq})
	if err != nil {
		t.Fatal(err)
	}
	st := waitJob(t, cl, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("sweep job via sync fallback failed: %s", st.Error)
	}
	if !bytes.Equal(compactJSON(t, st.Result), compactJSON(t, wantSweep)) {
		t.Fatal("sweep job result differs from single node via sync fallback")
	}

	h, err = cl.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindRobustness, Robustness: &robReq})
	if err != nil {
		t.Fatal(err)
	}
	st = waitJob(t, cl, h.ID)
	if st.State != api.JobStateSucceeded {
		t.Fatalf("robustness job via sync fallback failed: %s", st.Error)
	}
	if !bytes.Equal(compactJSON(t, st.Result), compactJSON(t, wantRob)) {
		t.Fatal("robustness job result differs from single node via sync fallback")
	}

	if n := c.metrics.salvageRounds.Load(); n != 0 {
		t.Fatalf("clean fallback runs recorded %d salvage rounds, want 0", n)
	}
}
