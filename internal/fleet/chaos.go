package fleet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosConfig tunes the deterministic fault-injecting transport. Every
// rate is a per-request probability in [0, 1]; at most one fault class
// fires per request, drawn in the declaration order below from a
// single seeded PCG stream — same seed, same request sequence, same
// faults. Zero-valued fields disable their class.
type ChaosConfig struct {
	// Seed drives the fault stream. The same seed over the same request
	// order reproduces the same faults exactly.
	Seed uint64

	// RefuseRate drops the request before it leaves: the caller sees a
	// transport error, as if the worker's listener were gone.
	RefuseRate float64

	// LatencyRate delays the request by Latency before forwarding.
	LatencyRate float64
	Latency     time.Duration

	// Err5xxRate synthesizes a 500 response with a well-formed error
	// envelope instead of forwarding. Err5xxBurst > 1 extends each hit
	// to that many consecutive requests — a worker stuck failing, not
	// one unlucky call.
	Err5xxRate  float64
	Err5xxBurst int

	// TruncateRate forwards the request but cuts the response body at
	// half its length — a worker dying mid-write.
	TruncateRate float64

	// CorruptRate forwards the request but overwrites a middle byte of
	// the response body with 0x00, which is invalid anywhere in JSON —
	// decoding fails loudly rather than yielding plausible wrong data.
	CorruptRate float64

	// SSECutRate applies to event-stream requests only (Accept:
	// text/event-stream): the response body is cut after SSECutAfter
	// bytes (default 256), severing the stream mid-event.
	SSECutRate  float64
	SSECutAfter int
}

// ChaosCounts reports how many times each fault class fired.
type ChaosCounts struct {
	Refused   int64
	Delayed   int64
	Err5xx    int64
	Truncated int64
	Corrupted int64
	SSECut    int64
	Passed    int64
}

// ChaosTransport is a fault-injecting http.RoundTripper for tests:
// install it as the coordinator's Options.HTTPClient transport and
// every worker call — shards, probes, job control, event streams —
// rolls against the configured fault classes. Faults are drawn from a
// seeded deterministic stream, so a failing chaos test replays
// exactly; the per-class counters say what actually fired.
type ChaosTransport struct {
	cfg  ChaosConfig
	next http.RoundTripper

	mu    sync.Mutex
	rng   *rand.Rand
	burst int // remaining forced-5xx requests

	refused   atomic.Int64
	delayed   atomic.Int64
	err5xx    atomic.Int64
	truncated atomic.Int64
	corrupted atomic.Int64
	sseCut    atomic.Int64
	passed    atomic.Int64
}

// NewChaosTransport wraps next (nil means http.DefaultTransport) with
// seeded fault injection.
func NewChaosTransport(cfg ChaosConfig, next http.RoundTripper) *ChaosTransport {
	if next == nil {
		next = http.DefaultTransport
	}
	if cfg.Err5xxBurst < 1 {
		cfg.Err5xxBurst = 1
	}
	if cfg.SSECutAfter <= 0 {
		cfg.SSECutAfter = 256
	}
	return &ChaosTransport{
		cfg:  cfg,
		next: next,
		rng:  rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
	}
}

// Counts snapshots the per-class fault counters.
func (t *ChaosTransport) Counts() ChaosCounts {
	return ChaosCounts{
		Refused:   t.refused.Load(),
		Delayed:   t.delayed.Load(),
		Err5xx:    t.err5xx.Load(),
		Truncated: t.truncated.Load(),
		Corrupted: t.corrupted.Load(),
		SSECut:    t.sseCut.Load(),
		Passed:    t.passed.Load(),
	}
}

// chaos fault classes, drawn in declaration order.
const (
	chaosNone = iota
	chaosRefuse
	chaosLatency
	chaos5xx
	chaosTruncate
	chaosCorrupt
	chaosSSECut
)

// roll draws this request's fault under the lock — the draw order is
// the serialization point that makes a seeded run reproducible.
func (t *ChaosTransport) roll(sse bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.burst > 0 {
		t.burst--
		return chaos5xx
	}
	u := t.rng.Float64()
	if sse {
		// Streams only refuse or cut: body mangling is meaningless for
		// an indefinite stream and latency just delays the first event.
		switch {
		case u < t.cfg.RefuseRate:
			return chaosRefuse
		case u < t.cfg.RefuseRate+t.cfg.SSECutRate:
			return chaosSSECut
		}
		return chaosNone
	}
	lo := 0.0
	for _, c := range []struct {
		rate  float64
		class int
	}{
		{t.cfg.RefuseRate, chaosRefuse},
		{t.cfg.LatencyRate, chaosLatency},
		{t.cfg.Err5xxRate, chaos5xx},
		{t.cfg.TruncateRate, chaosTruncate},
		{t.cfg.CorruptRate, chaosCorrupt},
	} {
		if u < lo+c.rate {
			if c.class == chaos5xx {
				t.burst = t.cfg.Err5xxBurst - 1
			}
			return c.class
		}
		lo += c.rate
	}
	return chaosNone
}

func (t *ChaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	sse := strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	switch t.roll(sse) {
	case chaosRefuse:
		t.refused.Add(1)
		return nil, fmt.Errorf("chaos: connection refused to %s", req.URL.Host)

	case chaosLatency:
		t.delayed.Add(1)
		timer := time.NewTimer(t.cfg.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
		return t.next.RoundTrip(req)

	case chaos5xx:
		t.err5xx.Add(1)
		body := `{"error":{"code":"internal","message":"chaos: injected server error"}}` + "\n"
		return &http.Response{
			StatusCode:    http.StatusInternalServerError,
			Status:        "500 Internal Server Error",
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil

	case chaosTruncate:
		resp, err := t.next.RoundTrip(req)
		if err != nil || resp.StatusCode/100 != 2 {
			return resp, err
		}
		t.truncated.Add(1)
		return mangleBody(resp, func(b []byte) []byte { return b[:len(b)/2] }), nil

	case chaosCorrupt:
		resp, err := t.next.RoundTrip(req)
		if err != nil || resp.StatusCode/100 != 2 {
			return resp, err
		}
		t.corrupted.Add(1)
		return mangleBody(resp, func(b []byte) []byte {
			if len(b) > 0 {
				b[len(b)/2] = 0x00
			}
			return b
		}), nil

	case chaosSSECut:
		resp, err := t.next.RoundTrip(req)
		if err != nil || resp.StatusCode/100 != 2 {
			return resp, err
		}
		t.sseCut.Add(1)
		resp.Body = &cutReader{rc: resp.Body, remaining: t.cfg.SSECutAfter}
		resp.ContentLength = -1
		return resp, nil

	default:
		t.passed.Add(1)
		return t.next.RoundTrip(req)
	}
}

// mangleBody reads resp's whole body, rewrites it with f, and returns
// resp carrying the mangled bytes. Read errors become an empty body —
// the caller was going to get a decode failure either way.
func mangleBody(resp *http.Response, f func([]byte) []byte) *http.Response {
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	b = f(b)
	resp.Body = io.NopCloser(bytes.NewReader(b))
	resp.ContentLength = int64(len(b))
	return resp
}

// cutReader severs a stream after remaining bytes: EOF mid-event, the
// way a killed worker drops an SSE connection.
type cutReader struct {
	rc        io.ReadCloser
	remaining int
}

func (c *cutReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, io.EOF
	}
	if len(p) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.rc.Read(p)
	c.remaining -= n
	return n, err
}

func (c *cutReader) Close() error { return c.rc.Close() }
