package fleet

import (
	"strconv"
	"strings"
	"testing"

	"pixel"
	"pixel/api"
)

// TestChunkRanges: contiguous cover of [0, n) with sizes differing by
// at most one, for every (n, k) in a small exhaustive box.
func TestChunkRanges(t *testing.T) {
	for n := 1; n <= 12; n++ {
		for k := -1; k <= n+3; k++ {
			rs := chunkRanges(n, k)
			want := k
			if want > n {
				want = n
			}
			if want < 1 {
				want = 1
			}
			if len(rs) != want {
				t.Fatalf("chunkRanges(%d, %d) has %d ranges, want %d", n, k, len(rs), want)
			}
			lo, minSz, maxSz := 0, n+1, 0
			for _, r := range rs {
				if r[0] != lo || r[1] <= r[0] {
					t.Fatalf("chunkRanges(%d, %d) = %v: not a contiguous cover", n, k, rs)
				}
				if sz := r[1] - r[0]; sz < minSz {
					minSz = sz
				} else if sz > maxSz {
					maxSz = sz
				}
				lo = r[1]
			}
			if lo != n {
				t.Fatalf("chunkRanges(%d, %d) = %v: covers [0, %d), want [0, %d)", n, k, rs, lo, n)
			}
			if maxSz > 0 && maxSz-minSz > 1 {
				t.Fatalf("chunkRanges(%d, %d) = %v: sizes differ by more than one", n, k, rs)
			}
		}
	}
}

// TestPlanSweepCoversGrid: at every shard target, the shards are
// contiguous blocks whose sub-request cross products reproduce the full
// canonical grid in order.
func TestPlanSweepCoversGrid(t *testing.T) {
	req := api.SweepRequest{
		Networks: []string{"lenet", "alexnet"},
		Lanes:    []int{2, 4, 8, 16},
		Bits:     []int{2, 4, 6, 8},
	}
	designs := pixel.Designs()
	full := pixel.Grid(designs, req.Lanes, req.Bits)
	for _, target := range []int{0, 1, 2, 3, 5, 7, 12, 30, 48, 100} {
		shards, points, err := planSweep(req, target)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if points != len(full) {
			t.Fatalf("target %d: points = %d, want %d", target, points, len(full))
		}
		next := 0
		for _, sh := range shards {
			if sh.Start != next {
				t.Fatalf("target %d: shard starts at %d, want %d", target, sh.Start, next)
			}
			sub := make([]pixel.Design, 0, len(sh.Req.Designs))
			for _, name := range sh.Req.Designs {
				d, err := pixel.ParseDesign(name)
				if err != nil {
					t.Fatalf("target %d: %v", target, err)
				}
				sub = append(sub, d)
			}
			grid := pixel.Grid(sub, sh.Req.Lanes, sh.Req.Bits)
			if len(grid) != sh.Count {
				t.Fatalf("target %d: shard grid has %d points, Count = %d", target, len(grid), sh.Count)
			}
			for j, p := range grid {
				if want := full[sh.Start+j]; p.String() != want.String() {
					t.Fatalf("target %d: shard point %d = %s, full grid has %s", target, sh.Start+j, p, want)
				}
			}
			next += sh.Count
		}
		if next != len(full) {
			t.Fatalf("target %d: shards cover %d points, want %d", target, next, len(full))
		}
		// Per-design (and per-lane) rounding can overshoot the target by
		// at most one chunk per design x lane.
		if target >= 1 && len(shards) > target+len(designs)*len(req.Lanes)-1 {
			t.Fatalf("target %d produced %d shards", target, len(shards))
		}
	}
}

// TestPlanSweepValidation: the planner rejects exactly what a worker's
// /v1/sweep rejects, with the same messages, before any fan-out.
func TestPlanSweepValidation(t *testing.T) {
	cases := []struct {
		name string
		req  api.SweepRequest
		want string
	}{
		{"no networks", api.SweepRequest{Lanes: []int{2}, Bits: []int{4}}, "networks must be non-empty"},
		{"no axes", api.SweepRequest{Networks: []string{"lenet"}}, "lanes and bits axes must be non-empty"},
		{"bad design", api.SweepRequest{Networks: []string{"lenet"}, Designs: []string{"ZZ"}, Lanes: []int{2}, Bits: []int{4}}, "unknown design"},
	}
	for _, tc := range cases {
		_, _, err := planSweep(tc.req, 4)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// TestPlanRobustness: σ chunks are contiguous axis slices; degenerate
// axes pass through whole.
func TestPlanRobustness(t *testing.T) {
	req := api.RobustnessRequest{
		Network: "lenet", Design: "OO",
		Sigmas: []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07},
		Trials: 8,
	}
	for _, target := range []int{1, 2, 3, 7, 10} {
		shards, err := planRobustness(req, DefaultMaxTrials, target)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		wantShards := target
		if wantShards > len(req.Sigmas) {
			wantShards = len(req.Sigmas)
		}
		if len(shards) != wantShards {
			t.Fatalf("target %d: %d shards, want %d", target, len(shards), wantShards)
		}
		lo := 0
		for _, sh := range shards {
			if sh.Lo != lo {
				t.Fatalf("target %d: shard Lo = %d, want %d", target, sh.Lo, lo)
			}
			for j, s := range sh.Req.Sigmas {
				if s != req.Sigmas[lo+j] {
					t.Fatalf("target %d: shard sigma %d = %v, want %v", target, lo+j, s, req.Sigmas[lo+j])
				}
			}
			lo += len(sh.Req.Sigmas)
		}
		if lo != len(req.Sigmas) {
			t.Fatalf("target %d: shards cover %d sigmas, want %d", target, lo, len(req.Sigmas))
		}
	}

	if _, err := planRobustness(api.RobustnessRequest{Network: "lenet", Design: "OO", Trials: 9999}, 4096, 2); err == nil || !strings.Contains(err.Error(), "trial limit") {
		t.Errorf("trials over cap: err = %v", err)
	}
	if shards, err := planRobustness(api.RobustnessRequest{Network: "lenet", Design: "OO", Trials: 4}, 4096, 3); err != nil || len(shards) != 1 {
		t.Errorf("empty sigma axis: shards = %v, err = %v, want single passthrough", shards, err)
	}
}

// TestMergeRobustnessProtection: the merged report takes the global max
// retry factor (earliest shard on ties) together with that shard's
// overheads, and refuses baseline disagreement.
func TestMergeRobustnessProtection(t *testing.T) {
	shards := []robustShard{{Lo: 0}, {Lo: 1}, {Lo: 2}}
	mk := func(retry, overhead float64) api.RobustnessResponse {
		return api.RobustnessResponse{
			Baseline: []int64{42},
			Points:   []pixel.YieldPoint{{}},
			Protection: &pixel.ProtectionReport{
				Points:          []pixel.ProtectedPoint{{}},
				MaxRetryFactor:  retry,
				EnergyOverhead:  overhead,
				LatencyOverhead: overhead,
				AreaOverhead:    overhead,
			},
		}
	}
	out, err := mergeRobustness(shards, []api.RobustnessResponse{mk(1.5, 10), mk(2.5, 20), mk(2.5, 30)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Protection.MaxRetryFactor != 2.5 || out.Protection.EnergyOverhead != 20 {
		t.Fatalf("merged protection = %+v, want retry 2.5 with shard-1 overheads", out.Protection)
	}
	if len(out.Points) != 3 || len(out.Protection.Points) != 3 {
		t.Fatalf("merged %d points / %d protected, want 3 / 3", len(out.Points), len(out.Protection.Points))
	}

	bad := []api.RobustnessResponse{mk(1, 1), mk(1, 1), mk(1, 1)}
	bad[2].Baseline = []int64{7}
	if _, err := mergeRobustness(shards, bad); err == nil || !strings.Contains(err.Error(), "baseline disagrees") {
		t.Fatalf("baseline mismatch: err = %v", err)
	}
}

// TestRingStability: every key lists every worker exactly once, and
// dropping the last worker only remaps keys that worker owned.
func TestRingStability(t *testing.T) {
	names := []string{"w0:1", "w1:1", "w2:1"}
	r3 := newRing(names)
	r2 := newRing(names[:2])
	keys := make([]string, 0, 500)
	for i := 0; i < 500; i++ {
		keys = append(keys, strings.Repeat("k", 1+i%7)+string(rune('a'+i%26))+strconv.Itoa(i))
	}
	moved := 0
	for _, k := range keys {
		seq := r3.sequence(k)
		if len(seq) != 3 {
			t.Fatalf("sequence(%q) = %v, want all 3 workers", k, seq)
		}
		seen := map[int]bool{}
		for _, wi := range seq {
			if seen[wi] {
				t.Fatalf("sequence(%q) = %v repeats a worker", k, seq)
			}
			seen[wi] = true
		}
		if r3.owner(k) == 2 {
			moved++
			continue
		}
		if r2.owner(k) != r3.owner(k) {
			t.Fatalf("key %q moved from %d to %d though worker 2 owned it in neither", k, r3.owner(k), r2.owner(k))
		}
	}
	if moved == 0 || moved == len(keys) {
		t.Fatalf("worker 2 owned %d/%d keys; want a proper share", moved, len(keys))
	}
}
