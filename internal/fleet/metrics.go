package fleet

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// shardBuckets are the shard-latency histogram bounds [s]: a warm
// worker answers an evaluate shard in well under a millisecond over
// loopback, a cold multi-network sweep shard can run into seconds.
var shardBuckets = []float64{
	0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// metrics is the coordinator's registry, exported on /metrics in
// Prometheus text exposition format under the pixelfleet_ prefix —
// same hand-rolled writer discipline as the worker's pixeld_ set.
type metrics struct {
	hedgesFired atomic.Int64 // duplicate shard arms launched past the straggler deadline
	hedgesWon   atomic.Int64 // hedged arms that beat their primary
	retries     atomic.Int64 // shard attempts after the first (backoff + failover)
	evictions   atomic.Int64 // healthy->unhealthy worker transitions
	revivals    atomic.Int64 // unhealthy->healthy worker transitions

	breakerOpens atomic.Int64 // circuit-breaker transitions into the open state
	breakerSkips atomic.Int64 // candidates skipped because their breaker refused the call

	workersAdded   atomic.Int64 // members admitted via POST /v1/fleet/workers
	workersRemoved atomic.Int64 // members retired via DELETE /v1/fleet/workers

	salvageRounds  atomic.Int64 // salvage re-plan rounds run by fleet jobs
	salvagedUnits  atomic.Int64 // cells/σ-points kept from failed shards instead of re-run
	replannedUnits atomic.Int64 // cells/σ-points re-dispatched in salvage shards
	jobsParked     atomic.Int64 // fleet jobs that paused waiting for a healthy worker

	mu        sync.Mutex
	requests  map[routeCode]int64   // completed coordinator requests by route+status
	shards    map[workerRoute]int64 // shards served, by winning worker and route
	durations map[string]*histogram // shard latency by route
}

type routeCode struct {
	route string
	code  int
}

type workerRoute struct {
	worker string
	route  string
}

type histogram struct {
	counts []int64 // one per bucket, cumulative at render time only
	sum    float64
	count  int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  map[routeCode]int64{},
		shards:    map[workerRoute]int64{},
		durations: map[string]*histogram{},
	}
}

// observeRequest records one completed coordinator HTTP request.
func (m *metrics) observeRequest(route string, code int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
}

// observeShard records one shard served by worker on route.
func (m *metrics) observeShard(route, worker string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shards[workerRoute{worker, route}]++
	h, ok := m.durations[route]
	if !ok {
		h = &histogram{counts: make([]int64, len(shardBuckets))}
		m.durations[route] = h
	}
	for i, b := range shardBuckets {
		if seconds <= b {
			h.counts[i]++
			break
		}
	}
	h.sum += seconds
	h.count++
}

// shardCount returns the shards served by worker on route — the test
// hook behind routing assertions.
func (m *metrics) shardCount(route, worker string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shards[workerRoute{worker, route}]
}

// write renders the registry in Prometheus text format. Series are
// emitted in sorted label order so scrapes are diffable.
func (m *metrics) write(w io.Writer, healthy, total, breakersOpen int) {
	fmt.Fprintln(w, "# HELP pixelfleet_workers Configured workers in the fleet.")
	fmt.Fprintln(w, "# TYPE pixelfleet_workers gauge")
	fmt.Fprintf(w, "pixelfleet_workers %d\n", total)

	fmt.Fprintln(w, "# HELP pixelfleet_workers_healthy Workers the prober currently trusts.")
	fmt.Fprintln(w, "# TYPE pixelfleet_workers_healthy gauge")
	fmt.Fprintf(w, "pixelfleet_workers_healthy %d\n", healthy)

	fmt.Fprintln(w, "# HELP pixelfleet_breakers_open Workers whose circuit breaker currently refuses calls.")
	fmt.Fprintln(w, "# TYPE pixelfleet_breakers_open gauge")
	fmt.Fprintf(w, "pixelfleet_breakers_open %d\n", breakersOpen)

	fmt.Fprintln(w, "# HELP pixelfleet_hedges_fired_total Duplicate shard arms launched past the straggler deadline.")
	fmt.Fprintln(w, "# TYPE pixelfleet_hedges_fired_total counter")
	fmt.Fprintf(w, "pixelfleet_hedges_fired_total %d\n", m.hedgesFired.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_hedges_won_total Hedged arms that beat their primary.")
	fmt.Fprintln(w, "# TYPE pixelfleet_hedges_won_total counter")
	fmt.Fprintf(w, "pixelfleet_hedges_won_total %d\n", m.hedgesWon.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_shard_retries_total Shard attempts after the first (backoff and ring failover).")
	fmt.Fprintln(w, "# TYPE pixelfleet_shard_retries_total counter")
	fmt.Fprintf(w, "pixelfleet_shard_retries_total %d\n", m.retries.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_worker_evictions_total Workers evicted after failed or draining health probes.")
	fmt.Fprintln(w, "# TYPE pixelfleet_worker_evictions_total counter")
	fmt.Fprintf(w, "pixelfleet_worker_evictions_total %d\n", m.evictions.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_worker_revivals_total Evicted workers revived by a good health probe.")
	fmt.Fprintln(w, "# TYPE pixelfleet_worker_revivals_total counter")
	fmt.Fprintf(w, "pixelfleet_worker_revivals_total %d\n", m.revivals.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_breaker_opens_total Circuit-breaker transitions into the open state.")
	fmt.Fprintln(w, "# TYPE pixelfleet_breaker_opens_total counter")
	fmt.Fprintf(w, "pixelfleet_breaker_opens_total %d\n", m.breakerOpens.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_breaker_skips_total Candidate workers skipped because their breaker refused the call.")
	fmt.Fprintln(w, "# TYPE pixelfleet_breaker_skips_total counter")
	fmt.Fprintf(w, "pixelfleet_breaker_skips_total %d\n", m.breakerSkips.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_workers_added_total Members admitted via the membership API.")
	fmt.Fprintln(w, "# TYPE pixelfleet_workers_added_total counter")
	fmt.Fprintf(w, "pixelfleet_workers_added_total %d\n", m.workersAdded.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_workers_removed_total Members retired via the membership API.")
	fmt.Fprintln(w, "# TYPE pixelfleet_workers_removed_total counter")
	fmt.Fprintf(w, "pixelfleet_workers_removed_total %d\n", m.workersRemoved.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_salvage_rounds_total Salvage re-plan rounds run by fleet jobs.")
	fmt.Fprintln(w, "# TYPE pixelfleet_salvage_rounds_total counter")
	fmt.Fprintf(w, "pixelfleet_salvage_rounds_total %d\n", m.salvageRounds.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_salvaged_units_total Cells and sigma points kept from failed shards instead of re-run.")
	fmt.Fprintln(w, "# TYPE pixelfleet_salvaged_units_total counter")
	fmt.Fprintf(w, "pixelfleet_salvaged_units_total %d\n", m.salvagedUnits.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_replanned_units_total Cells and sigma points re-dispatched in salvage shards.")
	fmt.Fprintln(w, "# TYPE pixelfleet_replanned_units_total counter")
	fmt.Fprintf(w, "pixelfleet_replanned_units_total %d\n", m.replannedUnits.Load())

	fmt.Fprintln(w, "# HELP pixelfleet_jobs_parked_total Fleet jobs that paused waiting for a healthy worker.")
	fmt.Fprintln(w, "# TYPE pixelfleet_jobs_parked_total counter")
	fmt.Fprintf(w, "pixelfleet_jobs_parked_total %d\n", m.jobsParked.Load())

	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP pixelfleet_requests_total Completed coordinator requests by route and status code.")
	fmt.Fprintln(w, "# TYPE pixelfleet_requests_total counter")
	rcs := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		rcs = append(rcs, k)
	}
	sort.Slice(rcs, func(i, j int) bool {
		if rcs[i].route != rcs[j].route {
			return rcs[i].route < rcs[j].route
		}
		return rcs[i].code < rcs[j].code
	})
	for _, k := range rcs {
		fmt.Fprintf(w, "pixelfleet_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k])
	}

	fmt.Fprintln(w, "# HELP pixelfleet_shards_total Shards served, by winning worker and route.")
	fmt.Fprintln(w, "# TYPE pixelfleet_shards_total counter")
	wrs := make([]workerRoute, 0, len(m.shards))
	for k := range m.shards {
		wrs = append(wrs, k)
	}
	sort.Slice(wrs, func(i, j int) bool {
		if wrs[i].worker != wrs[j].worker {
			return wrs[i].worker < wrs[j].worker
		}
		return wrs[i].route < wrs[j].route
	})
	for _, k := range wrs {
		fmt.Fprintf(w, "pixelfleet_shards_total{worker=%q,route=%q} %d\n", k.worker, k.route, m.shards[k])
	}

	fmt.Fprintln(w, "# HELP pixelfleet_shard_duration_seconds Shard latency by route.")
	fmt.Fprintln(w, "# TYPE pixelfleet_shard_duration_seconds histogram")
	routes := make([]string, 0, len(m.durations))
	for r := range m.durations {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		h := m.durations[r]
		var cum int64
		for i, b := range shardBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "pixelfleet_shard_duration_seconds_bucket{route=%q,le=%q} %d\n",
				r, strconv.FormatFloat(b, 'g', -1, 64), cum)
		}
		fmt.Fprintf(w, "pixelfleet_shard_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", r, h.count)
		fmt.Fprintf(w, "pixelfleet_shard_duration_seconds_sum{route=%q} %g\n", r, h.sum)
		fmt.Fprintf(w, "pixelfleet_shard_duration_seconds_count{route=%q} %d\n", r, h.count)
	}
}
