package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"pixel/api"
	"pixel/internal/jobs"
)

// strictUnmarshal mirrors the worker's job-spec decoding: unknown
// fields fail at submission with the same message.
func strictUnmarshal(spec json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("bad job spec: %v", err)
	}
	return nil
}

// buildJobTask is the coordinator's jobs.Factory. Validation runs
// eagerly through the same planners the synchronous routes use — a bad
// spec is rejected at POST /v1/jobs, before any worker sees it — and
// the returned tasks fan shards out at Run time, folding each shard
// response into chunked partial results as it lands.
func (c *Coordinator) buildJobTask(kind string, spec json.RawMessage) (jobs.Task, error) {
	switch kind {
	case api.JobKindRobustness:
		var req api.RobustnessRequest
		if err := strictUnmarshal(spec, &req); err != nil {
			return nil, err
		}
		if _, err := planRobustness(req, c.opts.MaxTrials, 1); err != nil {
			return nil, err
		}
		return &fleetRobustnessTask{
			c:      c,
			req:    req,
			total:  len(req.Sigmas) * req.Trials,
			points: map[int]api.JobPoint{},
		}, nil

	case api.JobKindSweep:
		var req api.SweepRequest
		if err := strictUnmarshal(spec, &req); err != nil {
			return nil, err
		}
		_, points, err := planSweep(req, 1)
		if err != nil {
			return nil, err
		}
		return &fleetSweepTask{
			c:     c,
			req:   req,
			total: len(req.Networks) * points,
			cells: map[sweepCellKey]api.JobCell{},
		}, nil

	default:
		return nil, badRequestf("unknown job kind %q (have %q, %q)", kind, api.JobKindRobustness, api.JobKindSweep)
	}
}

// errNoCheckpoint marks coordinator tasks as non-resumable. The
// registry never asks (it has no Manager): the expensive state lives in
// the workers' result caches, so a restarted coordinator re-runs
// cheaply instead of checkpointing.
var errNoCheckpoint = errors.New("fleet: coordinator jobs do not checkpoint")

// fleetSweepTask runs a sweep job by fanning shards across the fleet.
// Progress advances a whole shard at a time, and landed shard cells
// become the chunked partial result — the same JobCell stream a worker
// reports, just in shard-sized steps.
type fleetSweepTask struct {
	c     *Coordinator
	req   api.SweepRequest
	total int

	mu    sync.Mutex
	done  int
	cells map[sweepCellKey]api.JobCell
}

type sweepCellKey struct {
	network string
	index   int
}

func (t *fleetSweepTask) Snapshot() ([]byte, error) { return nil, errNoCheckpoint }
func (t *fleetSweepTask) Restore([]byte) error      { return errNoCheckpoint }

func (t *fleetSweepTask) Progress() (int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.total
}

// Partial returns the grid cells landed so far, sorted by network then
// index — the same shape and order a worker's sweep job reports.
func (t *fleetSweepTask) Partial() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]api.JobCell, 0, len(t.cells))
	for _, c := range t.cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Network != out[j].Network {
			return out[i].Network < out[j].Network
		}
		return out[i].Index < out[j].Index
	})
	return out
}

func (t *fleetSweepTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	resp, err := t.c.runSweep(ctx, t.req, func(sh sweepShard, r api.SweepResponse) {
		t.mu.Lock()
		defer t.mu.Unlock()
		for _, n := range t.req.Networks {
			for j, res := range r.Results[n] {
				idx := sh.Start + j
				t.cells[sweepCellKey{n, idx}] = api.JobCell{Network: n, Index: idx, Result: res}
			}
		}
		t.done += sh.Count * len(t.req.Networks)
		emit(api.JobEventProgress, api.JobProgress{Done: t.done, Total: t.total})
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// fleetRobustnessTask runs a robustness job by fanning σ-axis shards
// across the fleet: one "point" event per σ point as its shard lands,
// completed points as the poll-time partial result.
type fleetRobustnessTask struct {
	c     *Coordinator
	req   api.RobustnessRequest
	total int

	mu     sync.Mutex
	done   int
	points map[int]api.JobPoint
}

func (t *fleetRobustnessTask) Snapshot() ([]byte, error) { return nil, errNoCheckpoint }
func (t *fleetRobustnessTask) Restore([]byte) error      { return errNoCheckpoint }

func (t *fleetRobustnessTask) Progress() (int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.total
}

// Partial returns the σ points completed so far, in axis order.
func (t *fleetRobustnessTask) Partial() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]api.JobPoint, 0, len(t.points))
	for _, p := range t.points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

func (t *fleetRobustnessTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	rep, err := t.c.runRobustness(ctx, t.req, func(sh robustShard, r api.RobustnessResponse) {
		t.mu.Lock()
		defer t.mu.Unlock()
		for j := range r.Points {
			idx := sh.Lo + j
			jp := api.JobPoint{Index: idx, Point: r.Points[j]}
			if r.Protection != nil && j < len(r.Protection.Points) {
				jp.Protected = &r.Protection.Points[j]
			}
			t.points[idx] = jp
			emit(api.JobEventPoint, jp)
		}
		t.done += len(sh.Req.Sigmas) * t.req.Trials
		emit(api.JobEventProgress, api.JobProgress{Done: t.done, Total: t.total})
	})
	if err != nil {
		return nil, err
	}
	return rep, nil
}

func (c *Coordinator) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	var spec any
	switch req.Kind {
	case api.JobKindRobustness:
		if req.Robustness == nil {
			writeError(w, badRequestf("kind %q requires a robustness spec", req.Kind))
			return
		}
		spec = req.Robustness
	case api.JobKindSweep:
		if req.Sweep == nil {
			writeError(w, badRequestf("kind %q requires a sweep spec", req.Kind))
			return
		}
		spec = req.Sweep
	default:
		writeError(w, badRequestf("unknown job kind %q (have %q, %q)", req.Kind, api.JobKindRobustness, api.JobKindSweep))
		return
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		writeError(w, fmt.Errorf("encode job spec: %w", err))
		return
	}
	j, err := c.reg.Create(req.Kind, buf)
	if err != nil {
		writeError(w, err)
		return
	}
	st := c.reg.Snapshot(j)
	writeJSON(w, http.StatusAccepted, api.JobHandle{ID: j.ID, Kind: j.Kind, State: string(st.State)})
}

// jobByPath resolves {id}; a miss writes the 404 and returns nil.
func (c *Coordinator) jobByPath(w http.ResponseWriter, r *http.Request) *jobs.Job {
	id := r.PathValue("id")
	j, ok := c.reg.Get(id)
	if !ok {
		writeError(w, &httpError{status: http.StatusNotFound, code: "not_found", msg: fmt.Sprintf("no job %q", id)})
		return nil
	}
	return j
}

func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := c.jobByPath(w, r)
	if j == nil {
		return
	}
	st := c.reg.Snapshot(j)
	resp := api.JobStatusResponse{
		ID:          st.ID,
		Kind:        st.Kind,
		State:       string(st.State),
		Done:        st.Done,
		Total:       st.Total,
		CreatedUnix: st.CreatedUnix,
		Adopted:     st.Adopted,
		Error:       st.Error,
		Result:      json.RawMessage(st.Result),
	}
	if st.Partial != nil {
		if buf, err := json.Marshal(st.Partial); err == nil {
			resp.Partial = buf
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := c.reg.Delete(id); err != nil {
		writeError(w, &httpError{status: http.StatusNotFound, code: "not_found", msg: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := c.jobByPath(w, r)
	if j == nil {
		return
	}
	err := c.reg.StreamEvents(w, r, j, c.opts.Heartbeat, func(st jobs.JobStatus) any {
		return api.JobProgress{Done: st.Done, Total: st.Total, Error: st.Error}
	})
	if err != nil {
		writeError(w, err)
	}
}
