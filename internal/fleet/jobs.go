package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sort"
	"sync"

	"pixel"
	"pixel/api"
	"pixel/internal/jobs"
)

// strictUnmarshal mirrors the worker's job-spec decoding: unknown
// fields fail at submission with the same message.
func strictUnmarshal(spec json.RawMessage, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(spec))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequestf("bad job spec: %v", err)
	}
	return nil
}

// buildJobTask is the coordinator's jobs.Factory. Validation runs
// eagerly through the same planners the synchronous routes use — a bad
// spec is rejected at POST /v1/jobs, before any worker sees it. The
// returned tasks dispatch shards as worker jobs, harvest their partial
// streams as the work lands, and re-plan only the still-missing units
// when a shard dies (partial-result salvage); with JobsDir set their
// harvest state checkpoints, so a restarted coordinator re-dispatches
// only unfinished work.
func (c *Coordinator) buildJobTask(kind string, spec json.RawMessage) (jobs.Task, error) {
	switch kind {
	case api.JobKindRobustness:
		var req api.RobustnessRequest
		if err := strictUnmarshal(spec, &req); err != nil {
			return nil, err
		}
		if _, err := planRobustness(req, c.opts.MaxTrials, 1); err != nil {
			return nil, err
		}
		return &fleetRobustnessTask{
			c:      c,
			req:    req,
			total:  len(req.Sigmas) * req.Trials,
			points: map[int]api.JobPoint{},
		}, nil

	case api.JobKindSweep:
		var req api.SweepRequest
		if err := strictUnmarshal(spec, &req); err != nil {
			return nil, err
		}
		unit, points, err := planSweep(req, 1)
		if err != nil {
			return nil, err
		}
		return &fleetSweepTask{
			c:       c,
			req:     req,
			total:   len(req.Networks) * points,
			points:  points,
			designs: unit[0].Req.Designs,
			cells:   map[sweepCellKey]api.JobCell{},
		}, nil

	default:
		return nil, badRequestf("unknown job kind %q (have %q, %q)", kind, api.JobKindRobustness, api.JobKindSweep)
	}
}

// fleetJobCkpt is the durable snapshot of a coordinator job: the
// harvest so far in global indices, plus (for robustness) the
// σ-independent response fields and the overhead donors already seen.
// It is everything a restarted coordinator needs to re-dispatch only
// the missing units and still merge a byte-identical final payload.
type fleetJobCkpt struct {
	Kind      string                   `json:"kind"`
	Total     int                      `json:"total"`
	Base      *api.RobustnessResponse  `json:"base,omitempty"`
	Overheads []pixel.ProtectionReport `json:"overheads,omitempty"`
	Points    []api.JobPoint           `json:"points,omitempty"`
	Cells     []api.JobCell            `json:"cells,omitempty"`
}

// fleetRobustnessTask runs a robustness job across the fleet: the σ
// axis splits into worker jobs, every per-point SSE event and polled
// partial is folded in as it lands, and a dead worker costs only its
// unfinished σ points — the salvage loop re-plans exactly those onto
// the survivors. Trial seeds exclude σ (see internal/montecarlo), so
// an arbitrary σ subset re-run is bit-exact.
type fleetRobustnessTask struct {
	c     *Coordinator
	req   api.RobustnessRequest
	total int

	mu        sync.Mutex
	done      int
	points    map[int]api.JobPoint // global σ index → landed point
	base      *api.RobustnessResponse
	overheads []pixel.ProtectionReport // Points-stripped donors, one per complete shard
}

func (t *fleetRobustnessTask) Snapshot() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ck := fleetJobCkpt{
		Kind:      api.JobKindRobustness,
		Total:     t.total,
		Base:      t.base,
		Overheads: t.overheads,
		Points:    sortedPoints(t.points),
	}
	return json.Marshal(ck)
}

func (t *fleetRobustnessTask) Restore(buf []byte) error {
	var ck fleetJobCkpt
	if err := json.Unmarshal(buf, &ck); err != nil {
		return err
	}
	if ck.Kind != api.JobKindRobustness || ck.Total != t.total {
		return fmt.Errorf("fleet: checkpoint is %q/%d, want %q/%d", ck.Kind, ck.Total, api.JobKindRobustness, t.total)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	restored := 0
	for _, jp := range ck.Points {
		if jp.Index < 0 || jp.Index >= len(t.req.Sigmas) {
			continue
		}
		if _, ok := t.points[jp.Index]; ok {
			continue
		}
		t.points[jp.Index] = jp
		t.done += t.req.Trials
		restored++
	}
	t.base = ck.Base
	t.overheads = ck.Overheads
	if restored > 0 {
		t.c.metrics.salvagedUnits.Add(int64(restored))
	}
	return nil
}

func (t *fleetRobustnessTask) Progress() (int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.total
}

// Partial returns the σ points completed so far, in axis order.
func (t *fleetRobustnessTask) Partial() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sortedPoints(t.points)
}

func sortedPoints(points map[int]api.JobPoint) []api.JobPoint {
	out := make([]api.JobPoint, 0, len(points))
	for _, p := range points {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	return out
}

// missing returns the global σ indices not yet landed, in axis order.
func (t *fleetRobustnessTask) missing() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []int
	for i := range t.req.Sigmas {
		if _, ok := t.points[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// robustJobShard is one dispatchable σ chunk: a valid sub-request plus
// the mapping from its local σ positions back to the global axis.
type robustJobShard struct {
	req api.RobustnessRequest
	key string
	idx []int // local σ position → global σ index
}

// planMissing chunks the missing σ indices into shards for the current
// fleet. The subsets preserve axis order but need not be contiguous —
// after a failure the holes are wherever the dead shard was.
func (t *fleetRobustnessTask) planMissing(missing []int) []robustJobShard {
	target := t.c.shardTarget()
	if target > len(missing) {
		target = len(missing)
	}
	shards := make([]robustJobShard, 0, target)
	for _, r := range chunkRanges(len(missing), target) {
		idx := missing[r[0]:r[1]]
		sub := t.req
		sub.Sigmas = make([]float64, len(idx))
		for j, gi := range idx {
			sub.Sigmas[j] = t.req.Sigmas[gi]
		}
		shards = append(shards, robustJobShard{req: sub, key: robustKey(sub), idx: idx})
	}
	return shards
}

func (t *fleetRobustnessTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	if len(t.req.Sigmas) == 0 {
		// Degenerate axis: pass through whole so the worker's own
		// validation and response shape apply verbatim.
		return t.c.Robustness(ctx, t.req)
	}
	t.mu.Lock()
	salvage := len(t.points) > 0 // adopted mid-flight from a checkpoint
	t.mu.Unlock()

	var lastErr error
	for dry := 0; ; {
		missing := t.missing()
		if len(missing) == 0 {
			break
		}
		if salvage {
			t.c.metrics.salvageRounds.Add(1)
			t.c.metrics.replannedUnits.Add(int64(len(missing)))
			t.c.logger.Info("fleet: robustness salvage round",
				"missing_points", len(missing), "axis_points", len(t.req.Sigmas))
		}
		if err := t.c.waitHealthy(ctx); err != nil {
			return nil, err
		}
		shards := t.planMissing(missing)
		err := fanAll(ctx, len(shards), func(ctx context.Context, i int) error {
			return t.runShard(ctx, shards[i], emit)
		})
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err != nil {
			lastErr = err
		}
		if landed := len(missing) - len(t.missing()); landed == 0 {
			dry++
			if dry >= t.c.opts.MaxSalvageRounds {
				if lastErr == nil {
					lastErr = errors.New("fleet: robustness job made no progress")
				}
				return nil, lastErr
			}
			if serr := sleepCtx(ctx, jitter(t.c.backoff(dry, lastErr))); serr != nil {
				return nil, serr
			}
		} else {
			dry = 0
		}
		salvage = true
	}
	return t.finalize(ctx)
}

// runShard dispatches one σ chunk as a worker job, folding every point
// it reports — a shard that dies still contributes what it streamed.
func (t *fleetRobustnessTask) runShard(ctx context.Context, sh robustJobShard, emit func(string, any)) error {
	harvested := 0
	fold := func(local api.JobPoint) {
		if local.Index < 0 || local.Index >= len(sh.idx) {
			return
		}
		gi := sh.idx[local.Index]
		t.mu.Lock()
		defer t.mu.Unlock()
		if _, ok := t.points[gi]; ok {
			return
		}
		jp := api.JobPoint{Index: gi, Point: local.Point, Protected: local.Protected}
		t.points[gi] = jp
		t.done += t.req.Trials
		harvested++
		emit(api.JobEventPoint, jp)
		emit(api.JobEventProgress, api.JobProgress{Done: t.done, Total: t.total})
	}
	res, err := t.c.runShardJob(ctx, sh.key,
		api.JobRequest{Kind: api.JobKindRobustness, Robustness: &sh.req},
		func(ev api.JobEvent) {
			if ev.Type != api.JobEventPoint {
				return
			}
			var jp api.JobPoint
			if json.Unmarshal(ev.Data, &jp) == nil {
				fold(jp)
			}
		},
		func(st api.JobStatusResponse) {
			if len(st.Partial) == 0 {
				return
			}
			var pts []api.JobPoint
			if json.Unmarshal(st.Partial, &pts) == nil {
				for _, jp := range pts {
					fold(jp)
				}
			}
		})
	if errors.Is(err, errJobsUnsupported) {
		// Workers without a job API: run the shard synchronously. The
		// harvest granularity collapses to whole shards; the salvage
		// loop still re-plans anything missing.
		resp, serr := runShard(ctx, t.c, "/v1/robustness", sh.key, func(ctx context.Context, cl *api.Client) (api.RobustnessResponse, error) {
			return cl.Robustness(ctx, sh.req)
		})
		if serr != nil {
			return serr
		}
		return t.foldResponse(sh, resp, emit)
	}
	if err != nil {
		if harvested > 0 {
			t.c.metrics.salvagedUnits.Add(int64(harvested))
			t.c.logger.Info("fleet: salvaged partial robustness shard",
				"points_kept", harvested, "points_lost", len(sh.idx)-harvested)
		}
		return err
	}
	var resp api.RobustnessResponse
	if uerr := json.Unmarshal(res, &resp); uerr != nil {
		return fmt.Errorf("fleet: decode robustness job result: %w", uerr)
	}
	return t.foldResponse(sh, resp, emit)
}

// foldResponse merges one complete shard response: its points land in
// their global slots, its σ-independent fields become (or cross-check)
// the base, and its protection overheads join the donor pool.
func (t *fleetRobustnessTask) foldResponse(sh robustJobShard, resp api.RobustnessResponse, emit func(string, any)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.base == nil {
		b := resp
		b.Points = nil
		if resp.Protection != nil {
			p := *resp.Protection
			p.Points = nil
			b.Protection = &p
		}
		t.base = &b
	} else if !slices.Equal(resp.Baseline, t.base.Baseline) {
		// Baseline is σ-independent, so every shard must agree — a
		// mismatch means the fleet mixes incompatible worker builds and
		// the merge refuses rather than guess.
		return errors.New("fleet: shard baseline disagrees with the fleet")
	}
	if resp.Protection != nil {
		p := *resp.Protection
		p.Points = nil
		t.overheads = append(t.overheads, p)
	}
	for j := range resp.Points {
		if j >= len(sh.idx) {
			break
		}
		gi := sh.idx[j]
		if _, ok := t.points[gi]; ok {
			continue
		}
		jp := api.JobPoint{Index: gi, Point: resp.Points[j]}
		if resp.Protection != nil && j < len(resp.Protection.Points) {
			jp.Protected = &resp.Protection.Points[j]
		}
		t.points[gi] = jp
		t.done += t.req.Trials
		emit(api.JobEventPoint, jp)
	}
	emit(api.JobEventProgress, api.JobProgress{Done: t.done, Total: t.total})
	return nil
}

// finalize assembles the single-node response from the harvested
// points. The protection overheads are a pure function of the global
// max retry factor, so any donor shard whose max matches supplies them
// byte-exactly; when no shard does (the achieving point was salvaged
// off a dead worker's stream), one synchronous single-σ probe at the
// argmax σ re-derives them — strictly less work than re-running the
// dead shard.
func (t *fleetRobustnessTask) finalize(ctx context.Context) (any, error) {
	t.mu.Lock()
	n := len(t.req.Sigmas)
	pts := make([]pixel.YieldPoint, n)
	prot := make([]*pixel.ProtectedPoint, n)
	for i := 0; i < n; i++ {
		jp, ok := t.points[i]
		if !ok {
			t.mu.Unlock()
			return nil, fmt.Errorf("fleet: robustness point %d missing after merge", i)
		}
		pts[i] = jp.Point
		prot[i] = jp.Protected
	}
	base := t.base
	overheads := slices.Clone(t.overheads)
	t.mu.Unlock()

	if base == nil {
		// Every point was harvested from streams of shards that died
		// before completing (or restored from such a checkpoint): one
		// single-σ probe donates the σ-independent fields and baseline.
		probe := t.req
		probe.Sigmas = t.req.Sigmas[:1]
		resp, err := t.c.Robustness(ctx, probe)
		if err != nil {
			return nil, err
		}
		b := resp
		b.Points = nil
		if resp.Protection != nil {
			p := *resp.Protection
			p.Points = nil
			b.Protection = &p
			overheads = append(overheads, p)
		}
		base = &b
	}

	out := *base
	out.Points = pts
	if base.Protection != nil {
		pr := *base.Protection
		pr.Points = make([]pixel.ProtectedPoint, n)
		globalMax, argmax := 0.0, 0
		for i := 0; i < n; i++ {
			if prot[i] == nil {
				return nil, fmt.Errorf("fleet: protected point %d missing after merge", i)
			}
			pr.Points[i] = *prot[i]
			if prot[i].RetryFactor > globalMax {
				globalMax, argmax = prot[i].RetryFactor, i
			}
		}
		donor := (*pixel.ProtectionReport)(nil)
		for i := range overheads {
			if overheads[i].MaxRetryFactor == globalMax {
				donor = &overheads[i]
				break
			}
		}
		if donor == nil {
			probe := t.req
			probe.Sigmas = []float64{t.req.Sigmas[argmax]}
			resp, err := t.c.Robustness(ctx, probe)
			if err != nil {
				return nil, err
			}
			if resp.Protection == nil {
				return nil, errors.New("fleet: overhead probe returned no protection curve")
			}
			donor = resp.Protection
		}
		pr.MaxRetryFactor = donor.MaxRetryFactor
		pr.EnergyOverhead = donor.EnergyOverhead
		pr.LatencyOverhead = donor.LatencyOverhead
		pr.AreaOverhead = donor.AreaOverhead
		out.Protection = &pr
	}
	return out, nil
}

// fleetSweepTask runs a sweep job across the fleet. Grid cells are
// harvested from each worker job's polled partial, so a dead worker
// costs only the cells it had not yet priced; the salvage loop groups
// the missing rows per (design, lane) into bit-subset sub-requests —
// still pure cross products, so still valid /v1/sweep bodies.
type fleetSweepTask struct {
	c       *Coordinator
	req     api.SweepRequest
	total   int      // cells: networks × grid rows
	points  int      // rows in the full design-major grid
	designs []string // explicit design names, axis order

	mu    sync.Mutex
	done  int
	cells map[sweepCellKey]api.JobCell
}

type sweepCellKey struct {
	network string
	index   int
}

func (t *fleetSweepTask) Snapshot() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ck := fleetJobCkpt{
		Kind:  api.JobKindSweep,
		Total: t.total,
		Cells: sortedCells(t.cells),
	}
	return json.Marshal(ck)
}

func (t *fleetSweepTask) Restore(buf []byte) error {
	var ck fleetJobCkpt
	if err := json.Unmarshal(buf, &ck); err != nil {
		return err
	}
	if ck.Kind != api.JobKindSweep || ck.Total != t.total {
		return fmt.Errorf("fleet: checkpoint is %q/%d, want %q/%d", ck.Kind, ck.Total, api.JobKindSweep, t.total)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	restored := 0
	for _, cell := range ck.Cells {
		if cell.Index < 0 || cell.Index >= t.points {
			continue
		}
		k := sweepCellKey{cell.Network, cell.Index}
		if _, ok := t.cells[k]; ok {
			continue
		}
		t.cells[k] = cell
		t.done++
		restored++
	}
	if restored > 0 {
		t.c.metrics.salvagedUnits.Add(int64(restored))
	}
	return nil
}

func (t *fleetSweepTask) Progress() (int, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.done, t.total
}

// Partial returns the grid cells landed so far, sorted by network then
// index — the same shape and order a worker's sweep job reports.
func (t *fleetSweepTask) Partial() any {
	t.mu.Lock()
	defer t.mu.Unlock()
	return sortedCells(t.cells)
}

func sortedCells(cells map[sweepCellKey]api.JobCell) []api.JobCell {
	out := make([]api.JobCell, 0, len(cells))
	for _, c := range cells {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Network != out[j].Network {
			return out[i].Network < out[j].Network
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// missingRows returns the global rows with at least one network's cell
// outstanding, plus the exact missing cell count for the metrics.
func (t *fleetSweepTask) missingRows() (rows []int, cells int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.points; i++ {
		miss := 0
		for _, n := range t.req.Networks {
			if _, ok := t.cells[sweepCellKey{n, i}]; !ok {
				miss++
			}
		}
		if miss > 0 {
			rows = append(rows, i)
			cells += miss
		}
	}
	return rows, cells
}

// sweepJobShard is one dispatchable grid chunk: a valid cross-product
// sub-request plus the mapping from its local rows to the global grid.
type sweepJobShard struct {
	req  api.SweepRequest
	key  string
	rows []int // local row → global grid row
}

// planMissing builds shards covering exactly the missing rows. A full
// grid uses the synchronous planner's contiguous chunks; a salvage
// round groups holes per (design, lane) with a bit subset in axis
// order — any bit subset of one (design, lane) is still a pure cross
// product, so still a valid worker request.
func (t *fleetSweepTask) planMissing(missing []int) []sweepJobShard {
	L, B := len(t.req.Lanes), len(t.req.Bits)
	if len(missing) == t.points {
		unit, _, err := planSweep(t.req, t.c.shardTarget())
		if err == nil {
			shards := make([]sweepJobShard, 0, len(unit))
			for _, sh := range unit {
				rows := make([]int, sh.Count)
				for j := range rows {
					rows[j] = sh.Start + j
				}
				shards = append(shards, sweepJobShard{req: sh.Req, key: sh.Key, rows: rows})
			}
			return shards
		}
	}
	// Group per (design, lane), preserving axis order within each group.
	type dl struct{ di, li int }
	groups := make(map[dl][]int)
	var order []dl
	for _, row := range missing {
		g := dl{row / (L * B), (row / B) % L}
		if _, ok := groups[g]; !ok {
			order = append(order, g)
		}
		groups[g] = append(groups[g], row)
	}
	shards := make([]sweepJobShard, 0, len(order))
	for _, g := range order {
		rows := groups[g]
		bits := make([]int, len(rows))
		for j, row := range rows {
			bits[j] = t.req.Bits[row%B]
		}
		sub := api.SweepRequest{
			Networks: t.req.Networks,
			Designs:  []string{t.designs[g.di]},
			Lanes:    []int{t.req.Lanes[g.li]},
			Bits:     bits,
		}
		shards = append(shards, sweepJobShard{req: sub, key: sweepKey(sub), rows: rows})
	}
	return shards
}

func (t *fleetSweepTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	t.mu.Lock()
	salvage := len(t.cells) > 0 // adopted mid-flight from a checkpoint
	t.mu.Unlock()

	var lastErr error
	for dry := 0; ; {
		missing, missingCells := t.missingRows()
		if len(missing) == 0 {
			break
		}
		if salvage {
			t.c.metrics.salvageRounds.Add(1)
			t.c.metrics.replannedUnits.Add(int64(missingCells))
			t.c.logger.Info("fleet: sweep salvage round",
				"missing_cells", missingCells, "total_cells", t.total)
		}
		if err := t.c.waitHealthy(ctx); err != nil {
			return nil, err
		}
		shards := t.planMissing(missing)
		err := fanAll(ctx, len(shards), func(ctx context.Context, i int) error {
			return t.runShard(ctx, shards[i], emit)
		})
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if err != nil {
			lastErr = err
		}
		_, stillMissing := t.missingRows()
		if stillMissing == missingCells {
			dry++
			if dry >= t.c.opts.MaxSalvageRounds {
				if lastErr == nil {
					lastErr = errors.New("fleet: sweep job made no progress")
				}
				return nil, lastErr
			}
			if serr := sleepCtx(ctx, jitter(t.c.backoff(dry, lastErr))); serr != nil {
				return nil, serr
			}
		} else {
			dry = 0
		}
		salvage = true
	}
	return t.finalize()
}

// runShard dispatches one grid chunk as a worker job, harvesting its
// polled partial cells — there is deliberately no per-cell SSE on
// sweep jobs (see api.JobCell), so polling is the harvest channel.
func (t *fleetSweepTask) runShard(ctx context.Context, sh sweepJobShard, emit func(string, any)) error {
	harvested := 0
	fold := func(batch []api.JobCell) {
		t.mu.Lock()
		defer t.mu.Unlock()
		folded := 0
		for _, cell := range batch {
			if cell.Index < 0 || cell.Index >= len(sh.rows) {
				continue
			}
			gi := sh.rows[cell.Index]
			k := sweepCellKey{cell.Network, gi}
			if _, ok := t.cells[k]; ok {
				continue
			}
			t.cells[k] = api.JobCell{Network: cell.Network, Index: gi, Result: cell.Result}
			t.done++
			folded++
		}
		if folded > 0 {
			harvested += folded
			emit(api.JobEventProgress, api.JobProgress{Done: t.done, Total: t.total})
		}
	}
	res, err := t.c.runShardJob(ctx, sh.key,
		api.JobRequest{Kind: api.JobKindSweep, Sweep: &sh.req},
		nil, // sweep worker jobs emit no per-cell events; the poll harvests
		func(st api.JobStatusResponse) {
			if len(st.Partial) == 0 {
				return
			}
			var cells []api.JobCell
			if json.Unmarshal(st.Partial, &cells) == nil {
				fold(cells)
			}
		})
	if errors.Is(err, errJobsUnsupported) {
		resp, serr := runShard(ctx, t.c, "/v1/sweep", sh.key, func(ctx context.Context, cl *api.Client) (api.SweepResponse, error) {
			return cl.Sweep(ctx, sh.req)
		})
		if serr != nil {
			return serr
		}
		return t.foldResponse(sh, resp, fold)
	}
	if err != nil {
		if harvested > 0 {
			t.c.metrics.salvagedUnits.Add(int64(harvested))
			t.c.logger.Info("fleet: salvaged partial sweep shard",
				"cells_kept", harvested, "cells_lost", len(sh.rows)*len(t.req.Networks)-harvested)
		}
		return err
	}
	var resp api.SweepResponse
	if uerr := json.Unmarshal(res, &resp); uerr != nil {
		return fmt.Errorf("fleet: decode sweep job result: %w", uerr)
	}
	return t.foldResponse(sh, resp, fold)
}

// foldResponse lands a complete shard response's rows cell by cell.
func (t *fleetSweepTask) foldResponse(sh sweepJobShard, resp api.SweepResponse, fold func([]api.JobCell)) error {
	if resp.Points != len(sh.rows) {
		return fmt.Errorf("fleet: sweep shard returned %d points, want %d", resp.Points, len(sh.rows))
	}
	for _, n := range t.req.Networks {
		rows := resp.Results[n]
		if len(rows) != len(sh.rows) {
			return fmt.Errorf("fleet: sweep shard returned %d rows for %q, want %d", len(rows), n, len(sh.rows))
		}
		batch := make([]api.JobCell, len(rows))
		for j := range rows {
			batch[j] = api.JobCell{Network: n, Index: j, Result: rows[j]}
		}
		fold(batch)
	}
	return nil
}

// finalize assembles the single-node SweepResponse from the harvested
// cells. Worker results decode into the same float64s a local run
// would produce and Go re-encodes float64 round-trips byte-exactly, so
// the payload is byte-identical to one worker pricing the whole grid.
func (t *fleetSweepTask) finalize() (any, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := api.SweepResponse{Points: t.points, Results: make(map[string][]api.Result, len(t.req.Networks))}
	for _, n := range t.req.Networks {
		rows := make([]api.Result, t.points)
		for i := 0; i < t.points; i++ {
			cell, ok := t.cells[sweepCellKey{n, i}]
			if !ok {
				return nil, fmt.Errorf("fleet: sweep cell %s/%d missing after merge", n, i)
			}
			rows[i] = cell.Result
		}
		out.Results[n] = rows
	}
	return out, nil
}

func (c *Coordinator) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	var spec any
	switch req.Kind {
	case api.JobKindRobustness:
		if req.Robustness == nil {
			writeError(w, badRequestf("kind %q requires a robustness spec", req.Kind))
			return
		}
		spec = req.Robustness
	case api.JobKindSweep:
		if req.Sweep == nil {
			writeError(w, badRequestf("kind %q requires a sweep spec", req.Kind))
			return
		}
		spec = req.Sweep
	default:
		writeError(w, badRequestf("unknown job kind %q (have %q, %q)", req.Kind, api.JobKindRobustness, api.JobKindSweep))
		return
	}
	buf, err := json.Marshal(spec)
	if err != nil {
		writeError(w, fmt.Errorf("encode job spec: %w", err))
		return
	}
	j, err := c.reg.Create(req.Kind, buf)
	if err != nil {
		writeError(w, err)
		return
	}
	st := c.reg.Snapshot(j)
	writeJSON(w, http.StatusAccepted, api.JobHandle{ID: j.ID, Kind: j.Kind, State: string(st.State)})
}

// jobByPath resolves {id}; a miss writes the 404 and returns nil.
func (c *Coordinator) jobByPath(w http.ResponseWriter, r *http.Request) *jobs.Job {
	id := r.PathValue("id")
	j, ok := c.reg.Get(id)
	if !ok {
		writeError(w, &httpError{status: http.StatusNotFound, code: "not_found", msg: fmt.Sprintf("no job %q", id)})
		return nil
	}
	return j
}

func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := c.jobByPath(w, r)
	if j == nil {
		return
	}
	st := c.reg.Snapshot(j)
	resp := api.JobStatusResponse{
		ID:          st.ID,
		Kind:        st.Kind,
		State:       string(st.State),
		Done:        st.Done,
		Total:       st.Total,
		CreatedUnix: st.CreatedUnix,
		Adopted:     st.Adopted,
		Error:       st.Error,
		Result:      json.RawMessage(st.Result),
	}
	if st.Partial != nil {
		if buf, err := json.Marshal(st.Partial); err == nil {
			resp.Partial = buf
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := c.reg.Delete(id); err != nil {
		writeError(w, &httpError{status: http.StatusNotFound, code: "not_found", msg: err.Error()})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := c.jobByPath(w, r)
	if j == nil {
		return
	}
	err := c.reg.StreamEvents(w, r, j, c.opts.Heartbeat, func(st jobs.JobStatus) any {
		return api.JobProgress{Done: st.Done, Total: st.Total, Error: st.Error}
	})
	if err != nil {
		writeError(w, err)
	}
}
