package fleet

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"time"

	"pixel/api"
)

// runShard executes one shard call against the fleet. The primary arm
// starts on the shard key's ring owner and walks ring successors with
// exponential backoff (the worker's Retry-After hint honored as a
// floor — the worker knows its own drain); once the route's latency
// window knows what "slow" means, a straggling primary is hedged with
// one duplicate arm on a rotated worker order and the first result
// wins, the loser cancelled through the shared arm context.
func runShard[T any](ctx context.Context, c *Coordinator, route, key string, call func(context.Context, *api.Client) (T, error)) (T, error) {
	var zero T
	order := c.candidates(key)
	armCtx, cancelArms := context.WithCancel(ctx)
	defer cancelArms()

	type armResult struct {
		v      T
		worker string
		hedge  bool
		err    error
	}
	results := make(chan armResult, 2)
	start := time.Now()
	launch := func(rot int, hedge bool) {
		rotated := append(append(make([]*worker, 0, len(order)), order[rot%len(order):]...), order[:rot%len(order)]...)
		go func() {
			v, w, err := runArm(armCtx, c, rotated, call)
			name := ""
			if w != nil {
				name = w.name
			}
			results <- armResult{v, name, hedge, err}
		}()
	}
	launch(0, false)
	outstanding := 1

	var hedgeC <-chan time.Time
	if len(order) > 1 {
		if d, ok := c.hedgeDelay(route); ok {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedge {
					c.metrics.hedgesWon.Add(1)
				}
				elapsed := time.Since(start)
				c.window(route).observe(elapsed)
				c.metrics.observeShard(route, r.worker, elapsed.Seconds())
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				// Each arm already walked every candidate; a pending hedge
				// timer has nothing new to try.
				return zero, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			c.metrics.hedgesFired.Add(1)
			launch(1, true)
			outstanding++
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// runArm tries the shard on each worker in order, wrapping around
// until the attempt budget runs out. The candidate scan skips workers
// whose circuit breaker is open — a flapping worker must not absorb
// the whole attempt budget — and every outcome feeds the winning (or
// failing) worker's breaker. It returns the winning worker with the
// result, and stops early on permanent errors — a 400 from one worker
// is a 400 from them all.
func runArm[T any](ctx context.Context, c *Coordinator, order []*worker, call func(context.Context, *api.Client) (T, error)) (T, *worker, error) {
	var zero T
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.metrics.retries.Add(1)
			if err := sleepCtx(ctx, jitter(c.backoff(attempt, lastErr))); err != nil {
				return zero, nil, lastErr
			}
		}
		w := pickAllowed(c, order, attempt)
		v, err := call(ctx, w.client)
		if err == nil {
			w.br.onSuccess()
			return v, w, nil
		}
		lastErr = err
		if workerFault(ctx, err) {
			if w.br.onFailure(time.Now()) {
				c.metrics.breakerOpens.Add(1)
				c.logger.Warn("fleet: breaker opened", "worker", w.name, "err", err)
			}
		}
		if !retryableErr(ctx, err) {
			return zero, nil, err
		}
	}
	return zero, nil, lastErr
}

// pickAllowed scans the candidate order from the attempt's rotation for
// the first worker whose breaker admits a call. When every breaker is
// open the nominal candidate is used anyway — a fully-tripped fleet
// must surface the real error, and the call doubles as a probe.
func pickAllowed(c *Coordinator, order []*worker, attempt int) *worker {
	n := len(order)
	now := time.Now()
	for k := 0; k < n; k++ {
		w := order[(attempt+k)%n]
		if w.br.allow(now) {
			if k > 0 {
				c.metrics.breakerSkips.Add(int64(k))
			}
			return w
		}
	}
	return order[attempt%n]
}

// backoff is the sleep before retry attempt (1-based): exponential
// from RetryBaseDelay capped at RetryMaxDelay, with the worker's
// Retry-After hint honored as a floor even above the cap.
func (c *Coordinator) backoff(attempt int, lastErr error) time.Duration {
	d := c.opts.RetryBaseDelay << (attempt - 1)
	if d > c.opts.RetryMaxDelay || d <= 0 {
		d = c.opts.RetryMaxDelay
	}
	var he *api.HTTPError
	if errors.As(lastErr, &he) && he.RetryAfterS > 0 {
		if hint := time.Duration(he.RetryAfterS) * time.Second; hint > d {
			d = hint
		}
	}
	return d
}

// jitter spreads d by ±10% so a fleet of coordinators cannot
// synchronize their retries or probes into a thundering herd on a
// recovering worker. Timing-only randomness — response bytes never
// depend on it.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d + time.Duration((rand.Float64()-0.5)*0.2*float64(d))
}

// retryableErr classifies a shard attempt failure: transport errors,
// temporary HTTP statuses (429, 503) and server-side 5xx are worth
// another worker; context ends and permanent 4xx statuses are not.
// 501 is a capability signal ("this worker has no such route"), not a
// fault — the caller decides on a fallback instead of retrying.
func retryableErr(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var he *api.HTTPError
	if errors.As(err, &he) {
		if he.Status == http.StatusNotImplemented {
			return false
		}
		return he.Temporary() || he.Status >= 500
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// workerFault reports whether the failure is attributable to the
// worker — the only kind the circuit breaker should count. Context
// ends (a cancelled hedge loser, a caller hang-up) and permanent 4xx
// request errors say nothing about the worker's health.
func workerFault(ctx context.Context, err error) bool {
	if ctx.Err() != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var he *api.HTTPError
	if errors.As(err, &he) {
		return (he.Status >= 500 && he.Status != http.StatusNotImplemented) || he.Status == 429
	}
	return true
}

// sleepCtx blocks for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
