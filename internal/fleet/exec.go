package fleet

import (
	"context"
	"errors"
	"time"

	"pixel/api"
)

// runShard executes one shard call against the fleet. The primary arm
// starts on the shard key's ring owner and walks ring successors with
// exponential backoff (the worker's Retry-After hint honored as a
// floor — the worker knows its own drain); once the route's latency
// window knows what "slow" means, a straggling primary is hedged with
// one duplicate arm on a rotated worker order and the first result
// wins, the loser cancelled through the shared arm context.
func runShard[T any](ctx context.Context, c *Coordinator, route, key string, call func(context.Context, *api.Client) (T, error)) (T, error) {
	var zero T
	order := c.candidates(key)
	armCtx, cancelArms := context.WithCancel(ctx)
	defer cancelArms()

	type armResult struct {
		v      T
		worker string
		hedge  bool
		err    error
	}
	results := make(chan armResult, 2)
	start := time.Now()
	launch := func(rot int, hedge bool) {
		rotated := append(append(make([]*worker, 0, len(order)), order[rot%len(order):]...), order[:rot%len(order)]...)
		go func() {
			v, name, err := runArm(armCtx, c, rotated, call)
			results <- armResult{v, name, hedge, err}
		}()
	}
	launch(0, false)
	outstanding := 1

	var hedgeC <-chan time.Time
	if len(order) > 1 {
		if d, ok := c.hedgeDelay(route); ok {
			t := time.NewTimer(d)
			defer t.Stop()
			hedgeC = t.C
		}
	}

	var firstErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				if r.hedge {
					c.metrics.hedgesWon.Add(1)
				}
				elapsed := time.Since(start)
				c.window(route).observe(elapsed)
				c.metrics.observeShard(route, r.worker, elapsed.Seconds())
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				// Each arm already walked every candidate; a pending hedge
				// timer has nothing new to try.
				return zero, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			c.metrics.hedgesFired.Add(1)
			launch(1, true)
			outstanding++
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// runArm tries the shard on each worker in order, wrapping around
// until the attempt budget runs out. It returns the winning worker's
// name with the result, and stops early on permanent errors — a 400
// from one worker is a 400 from them all.
func runArm[T any](ctx context.Context, c *Coordinator, order []*worker, call func(context.Context, *api.Client) (T, error)) (T, string, error) {
	var zero T
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.metrics.retries.Add(1)
			if err := sleepCtx(ctx, c.backoff(attempt, lastErr)); err != nil {
				return zero, "", lastErr
			}
		}
		w := order[attempt%len(order)]
		v, err := call(ctx, w.client)
		if err == nil {
			return v, w.name, nil
		}
		lastErr = err
		if !retryableErr(ctx, err) {
			return zero, "", err
		}
	}
	return zero, "", lastErr
}

// backoff is the sleep before retry attempt (1-based): exponential
// from RetryBaseDelay capped at RetryMaxDelay, with the worker's
// Retry-After hint honored as a floor even above the cap.
func (c *Coordinator) backoff(attempt int, lastErr error) time.Duration {
	d := c.opts.RetryBaseDelay << (attempt - 1)
	if d > c.opts.RetryMaxDelay || d <= 0 {
		d = c.opts.RetryMaxDelay
	}
	var he *api.HTTPError
	if errors.As(lastErr, &he) && he.RetryAfterS > 0 {
		if hint := time.Duration(he.RetryAfterS) * time.Second; hint > d {
			d = hint
		}
	}
	return d
}

// retryableErr classifies a shard attempt failure: transport errors
// and temporary HTTP statuses (429, 503) are worth another worker;
// context ends and permanent statuses are not.
func retryableErr(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var he *api.HTTPError
	if errors.As(err, &he) {
		return he.Temporary()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// sleepCtx blocks for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
