package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pixel"
	"pixel/api"
	"pixel/internal/server"
)

func discardLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newWorkerHandler builds a real single-node pixeld handler: the same
// engine and robustness evaluator the pixeld binary wires up. No job
// routes — tests that wrap the handler want the sync surface only.
func newWorkerHandler() http.Handler {
	srv := server.New(server.Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{}),
		Robust: server.RobustnessFunc(func(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
			return pixel.RobustnessContext(ctx, spec)
		}),
		Logger: discardLogger(),
	})
	return srv.Handler()
}

// startWorker brings up one real worker with the job routes enabled —
// the shape a production fleet member has.
func startWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{}),
		Robust: server.RobustnessFunc(func(ctx context.Context, spec pixel.RobustnessSpec) (pixel.RobustnessReport, error) {
			return pixel.RobustnessContext(ctx, spec)
		}),
		Jobs:   &server.JobsConfig{MaxRunning: 8},
		Logger: discardLogger(),
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

// startWorkers brings up n real workers and returns their base URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		urls[i] = startWorker(t).URL
	}
	return urls
}

// newTestCoordinator builds a coordinator with test-fast retry and
// job-poll timing.
func newTestCoordinator(t *testing.T, opts Options) *Coordinator {
	t.Helper()
	if opts.RetryBaseDelay == 0 {
		opts.RetryBaseDelay = time.Millisecond
	}
	if opts.JobPollInterval == 0 {
		opts.JobPollInterval = 5 * time.Millisecond
	}
	if opts.Logger == nil {
		opts.Logger = discardLogger()
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// postJSON posts v and returns the status plus the raw response body —
// raw bytes, because byte-identity is the contract under test.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// sweep48 is the canonical 48-point grid (3 designs x 4 lanes x 4 bit
// widths) over two networks.
func sweep48() api.SweepRequest {
	return api.SweepRequest{
		Networks: []string{"AlexNet", "LeNet"},
		Lanes:    []int{2, 4, 8, 16},
		Bits:     []int{2, 4, 6, 8},
	}
}

// TestSweepByteIdenticalAcrossShardCounts: the coordinator's /v1/sweep
// body is byte-for-byte the single-node body at shard targets 1, 2, 3
// and 7.
func TestSweepByteIdenticalAcrossShardCounts(t *testing.T) {
	workers := startWorkers(t, 3)
	req := sweep48()
	status, want := postJSON(t, workers[0]+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	cases := []struct {
		name    string
		workers []string
		spw     int
	}{
		{"1 shard", workers[:1], 1},
		{"2 shards", workers[:2], 1},
		{"3 shards", workers, 1},
		{"7 shards", workers[:1], 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCoordinator(t, Options{Workers: tc.workers, ShardsPerWorker: tc.spw})
			ts := httptest.NewServer(c.Handler())
			defer ts.Close()
			status, got := postJSON(t, ts.URL+"/v1/sweep", req)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("fleet sweep body differs from single node\nfleet: %.200s\nnode:  %.200s", got, want)
			}
		})
	}
}

// TestRobustnessByteIdenticalAcrossShardCounts: σ-axis sharding (with a
// protection curve riding along) merges byte-identically at shard
// targets 1, 2, 3 and 7.
func TestRobustnessByteIdenticalAcrossShardCounts(t *testing.T) {
	workers := startWorkers(t, 3)
	req := api.RobustnessRequest{
		Network: "LeNet", Design: "OO",
		Sigmas:     []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07},
		Trials:     6,
		Seed:       7,
		Protection: &api.ProtectionSpec{Scheme: "parity"},
	}
	status, want := postJSON(t, workers[0]+"/v1/robustness", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	cases := []struct {
		name    string
		workers []string
		spw     int
	}{
		{"1 shard", workers[:1], 1},
		{"2 shards", workers[:2], 1},
		{"3 shards", workers, 1},
		{"7 shards", workers[:1], 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newTestCoordinator(t, Options{Workers: tc.workers, ShardsPerWorker: tc.spw})
			ts := httptest.NewServer(c.Handler())
			defer ts.Close()
			status, got := postJSON(t, ts.URL+"/v1/robustness", req)
			if status != http.StatusOK {
				t.Fatalf("status %d: %s", status, got)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("fleet robustness body differs from single node\nfleet: %.200s\nnode:  %.200s", got, want)
			}
		})
	}
}

// TestSweepSurvivesWorkerKilledMidRun: one worker serves its first
// sweep shard and then drops every later connection cold (a SIGKILL's
// view from the wire). Its shards fail over to the survivor and the
// merged body stays byte-identical.
func TestSweepSurvivesWorkerKilledMidRun(t *testing.T) {
	workers := startWorkers(t, 1)
	req := sweep48()
	status, want := postJSON(t, workers[0]+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	var served atomic.Int64
	inner := newWorkerHandler()
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/sweep" && served.Add(1) > 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer is not a hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Errorf("hijack: %v", err)
				return
			}
			conn.Close() // no response, no FIN handshake courtesy: the process is "gone"
			return
		}
		inner.ServeHTTP(w, r)
	})

	// The ring hashes worker URLs, so which shards the dying worker owns
	// depends on its ephemeral port. Redraw until it owns at least two
	// of this request's shards, so the kill provably strands work.
	const shardsPerWorker = 8
	shards, _, err := planSweep(req, 2*shardsPerWorker)
	if err != nil {
		t.Fatal(err)
	}
	var dying *httptest.Server
	for tries := 0; tries < 16 && dying == nil; tries++ {
		s := httptest.NewServer(handler)
		owned := 0
		r := newRing([]string{workers[0], s.URL})
		for _, sh := range shards {
			if r.owner(sh.Key) == 1 {
				owned++
			}
		}
		if owned >= 2 {
			dying = s
		} else {
			s.Close()
		}
	}
	if dying == nil {
		t.Fatal("could not place a dying worker that owns shards")
	}
	defer dying.Close()

	c := newTestCoordinator(t, Options{
		Workers:         []string{workers[0], dying.URL},
		ShardsPerWorker: shardsPerWorker,
	})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	status, got := postJSON(t, ts.URL+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet sweep body differs from single node after mid-run worker death")
	}
	if served.Load() < 2 {
		t.Fatalf("dying worker saw %d sweep requests; the kill never happened", served.Load())
	}
	if c.metrics.retries.Load() == 0 {
		t.Fatal("no retries recorded though a worker died mid-run")
	}
}

// TestProberEvictsAndRevives: a worker reporting "draining" is evicted
// on the next probe and revived once it reports ok again.
func TestProberEvictsAndRevives(t *testing.T) {
	var draining atomic.Bool
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/healthz" && draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"status":"draining"}`+"\n")
			return
		}
		io.WriteString(w, `{"status":"ok"}`+"\n")
	}))
	defer flappy.Close()

	c := newTestCoordinator(t, Options{
		Workers:       []string{flappy.URL},
		ProbeInterval: 5 * time.Millisecond,
	})
	waitHealthy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		members, _ := c.membership()
		for members[0].healthy.Load() != want {
			if time.Now().After(deadline) {
				t.Fatalf("worker healthy never became %v", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	draining.Store(true)
	waitHealthy(false)
	if got := c.metrics.evictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	draining.Store(false)
	waitHealthy(true)
	if got := c.metrics.revivals.Load(); got != 1 {
		t.Fatalf("revivals = %d, want 1", got)
	}

	var buf bytes.Buffer
	members, _ := c.membership()
	c.metrics.write(&buf, c.healthyCount(), len(members), c.breakersOpen())
	for _, want := range []string{
		"pixelfleet_worker_evictions_total 1",
		"pixelfleet_worker_revivals_total 1",
		"pixelfleet_workers_healthy 1",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestHedgeBeatsStraggler: with a latency baseline seeded, a shard
// routed to a straggling owner is hedged onto the fast worker and the
// hedge's result wins.
func TestHedgeBeatsStraggler(t *testing.T) {
	fast := httptest.NewServer(newWorkerHandler())
	defer fast.Close()
	inner := newWorkerHandler()
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/evaluate" {
			time.Sleep(500 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	}))
	defer slow.Close()

	c := newTestCoordinator(t, Options{
		Workers:         []string{fast.URL, slow.URL},
		HedgeMinSamples: 1,
		HedgeMinDelay:   5 * time.Millisecond,
	})
	c.window("/v1/evaluate").observe(time.Millisecond)

	// Find a design point the slow worker owns so the primary arm
	// genuinely straggles.
	req := api.EvaluateRequest{Network: "LeNet", Design: "OO"}
	d, err := pixel.ParseDesign(req.Design)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, lanes := range []int{2, 4, 8, 16} {
		for _, bits := range []int{2, 4, 6, 8} {
			p := pixel.Point{Design: d, Lanes: lanes, Bits: bits}
			if c.ring.owner(req.Network+"|"+p.String()) == 1 {
				req.Lanes, req.Bits = lanes, bits
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no probe point routed to the slow worker")
	}

	start := time.Now()
	res, err := c.Evaluate(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 500*time.Millisecond {
		t.Fatalf("evaluate took %v; the hedge never won", elapsed)
	}
	if res.Network != "LeNet" || res.Lanes != req.Lanes {
		t.Fatalf("unexpected result %+v", res)
	}
	if c.metrics.hedgesFired.Load() == 0 || c.metrics.hedgesWon.Load() == 0 {
		t.Fatalf("hedges fired=%d won=%d, want both > 0",
			c.metrics.hedgesFired.Load(), c.metrics.hedgesWon.Load())
	}
}

// TestErrorPassthrough: a worker-side failure surfaces from the
// coordinator with the worker's own status and body.
func TestErrorPassthrough(t *testing.T) {
	workers := startWorkers(t, 2)
	req := api.EvaluateRequest{Network: "no-such-net", Design: "OO", Lanes: 4, Bits: 4}
	wantStatus, want := postJSON(t, workers[0]+"/v1/evaluate", req)
	if wantStatus != http.StatusNotFound {
		t.Fatalf("single node: status %d: %s", wantStatus, want)
	}
	c := newTestCoordinator(t, Options{Workers: workers})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	status, got := postJSON(t, ts.URL+"/v1/evaluate", req)
	if status != wantStatus || !bytes.Equal(got, want) {
		t.Fatalf("fleet error = %d %s, want %d %s", status, got, wantStatus, want)
	}
}

// TestCoordinatorSweepJob: a sweep submitted as a job fans out, reports
// chunked partial cells, and finishes with the single-node result.
func TestCoordinatorSweepJob(t *testing.T) {
	workers := startWorkers(t, 2)
	req := sweep48()
	status, singleBody := postJSON(t, workers[0]+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d", status)
	}
	var want api.SweepResponse
	if err := json.Unmarshal(singleBody, &want); err != nil {
		t.Fatal(err)
	}

	c := newTestCoordinator(t, Options{Workers: workers})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()
	cl := api.NewClient(ts.URL, nil)

	h, err := cl.CreateJob(context.Background(), api.JobRequest{Kind: api.JobKindSweep, Sweep: &req})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	var st api.JobStatusResponse
	for {
		st, err = cl.Job(context.Background(), h.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == api.JobStateSucceeded || st.State == api.JobStateFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st.State != api.JobStateSucceeded {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.Done != st.Total || st.Total != len(req.Networks)*48 {
		t.Fatalf("done/total = %d/%d, want %d/%d", st.Done, st.Total, len(req.Networks)*48, len(req.Networks)*48)
	}
	var got api.SweepResponse
	if err := json.Unmarshal(st.Result, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("job result differs from the single-node sweep")
	}
	// Chunked partial results, white-box: the task accumulates every
	// grid cell shard by shard, and each one matches the single-node
	// grid. (The registry only reports Partial while a job is still
	// running, so the terminal HTTP status above no longer carries it.)
	spec, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	task, err := c.buildJobTask(api.JobKindSweep, spec)
	if err != nil {
		t.Fatal(err)
	}
	progressEvents := 0
	if _, err := task.Run(context.Background(), func(typ string, _ any) {
		if typ == api.JobEventProgress {
			progressEvents++
		}
	}); err != nil {
		t.Fatal(err)
	}
	cells, ok := task.(*fleetSweepTask).Partial().([]api.JobCell)
	if !ok || len(cells) != len(req.Networks)*48 {
		t.Fatalf("partial has %d cells, want %d", len(cells), len(req.Networks)*48)
	}
	for _, cell := range cells {
		if want := want.Results[cell.Network][cell.Index]; !reflect.DeepEqual(cell.Result, want) {
			t.Fatalf("cell %s[%d] differs from the single-node grid", cell.Network, cell.Index)
		}
	}
	if progressEvents == 0 {
		t.Fatal("task emitted no progress events")
	}
}

// TestValidationMatchesWorker: a request a worker would reject is
// rejected by the coordinator with the same status and body, without
// touching any worker.
func TestValidationMatchesWorker(t *testing.T) {
	workers := startWorkers(t, 1)
	c := newTestCoordinator(t, Options{Workers: []string{"127.0.0.1:1"}}) // unroutable on purpose
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	bad := api.SweepRequest{Networks: []string{"LeNet"}}
	wantStatus, want := postJSON(t, workers[0]+"/v1/sweep", bad)
	status, got := postJSON(t, ts.URL+"/v1/sweep", bad)
	if status != wantStatus || !bytes.Equal(got, want) {
		t.Fatalf("fleet rejection = %d %s, want %d %s", status, got, wantStatus, want)
	}
}
