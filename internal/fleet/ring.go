package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// vnodesPerWorker is how many virtual nodes each worker places on the
// hash ring. 64 keeps the key-space split within a few percent of even
// for small fleets while the ring stays tiny (a few KB).
const vnodesPerWorker = 64

// ring is a consistent-hash ring over the worker set. Shard keys hash
// onto the ring and are owned by the next virtual node clockwise;
// adding or removing one worker only moves the keys that node owned,
// so the evaluate/coalescing key of a design point stays hot in
// exactly one worker's result LRU across fleet reconfigurations.
type ring struct {
	hashes []uint64 // sorted vnode positions
	owners []int    // worker index per vnode, parallel to hashes
	n      int      // worker count
}

func newRing(workers []string) *ring {
	r := &ring{n: len(workers)}
	type vnode struct {
		h uint64
		w int
	}
	vns := make([]vnode, 0, len(workers)*vnodesPerWorker)
	for wi, name := range workers {
		for v := 0; v < vnodesPerWorker; v++ {
			vns = append(vns, vnode{hash64(name + "#" + strconv.Itoa(v)), wi})
		}
	}
	// Ties (two vnodes at one position) break by worker index so the
	// ring is a pure function of the configured worker list.
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].h != vns[j].h {
			return vns[i].h < vns[j].h
		}
		return vns[i].w < vns[j].w
	})
	r.hashes = make([]uint64, len(vns))
	r.owners = make([]int, len(vns))
	for i, vn := range vns {
		r.hashes[i] = vn.h
		r.owners[i] = vn.w
	}
	return r
}

// hash64 is FNV-1a finished with a splitmix64-style avalanche. Raw
// FNV keeps near-identical inputs (worker URLs differing in one port
// digit, vnode suffixes counting up) correlated enough to split the
// ring 90/10; the finalizer diffuses every input bit across the word.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// owner returns the worker index owning key.
func (r *ring) owner(key string) int {
	return r.owners[r.start(key)]
}

// sequence returns every worker index in ring order starting at the
// key's owner, each worker exactly once — the failover order of a
// shard keyed by key.
func (r *ring) sequence(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	for i, left := r.start(key), r.n; left > 0; i = (i + 1) % len(r.hashes) {
		w := r.owners[i]
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
			left--
		}
	}
	return out
}

// start locates the first vnode clockwise of the key's hash.
func (r *ring) start(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}
