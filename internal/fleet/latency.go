package fleet

import (
	"math"
	"sort"
	"sync"
	"time"
)

// latencyWindow keeps the most recent shard durations of one route in
// a fixed ring buffer — cheap enough for the request hot path — and
// answers the percentile queries the hedge deadline needs.
type latencyWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	n    int // filled entries
}

func newLatencyWindow(size int) *latencyWindow {
	return &latencyWindow{buf: make([]time.Duration, size)}
}

func (l *latencyWindow) observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

func (l *latencyWindow) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// percentile returns the window's p-quantile (0 < p <= 1) by
// nearest-rank, or 0 for an empty window.
func (l *latencyWindow) percentile(p float64) time.Duration {
	l.mu.Lock()
	tmp := append([]time.Duration(nil), l.buf[:l.n]...)
	l.mu.Unlock()
	if len(tmp) == 0 {
		return 0
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(math.Ceil(p*float64(len(tmp)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(tmp) {
		i = len(tmp) - 1
	}
	return tmp[i]
}
