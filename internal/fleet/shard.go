package fleet

import (
	"fmt"
	"slices"

	"pixel"
	"pixel/api"
)

// Request-size limits mirrored from the worker's synchronous routes: a
// coordinator must reject what a single node would reject, with the
// same message, before any worker sees the request.
const (
	maxSweepJobs   = 65536
	maxSigmaPoints = 256
)

// sweepShard is one worker-sized block of a sweep: a valid /v1/sweep
// sub-request covering the contiguous rows [Start, Start+Count) of the
// full request's canonical design-major point grid.
type sweepShard struct {
	Req   api.SweepRequest
	Key   string // consistent-hash routing key, stable across repeats
	Start int
	Count int
}

// planSweep validates req exactly as a worker's /v1/sweep would and
// splits the canonical grid (design-major, then lanes, then bits) into
// at most target cross-product-expressible shards. The split
// hierarchy follows the grid's axis order — whole-design chunks first,
// then per-design lane chunks, then per-(design, lane) bit chunks —
// so every shard stays a contiguous block and its sub-request stays a
// pure cross product. points is the full grid size.
func planSweep(req api.SweepRequest, target int) (shards []sweepShard, points int, err error) {
	if len(req.Networks) == 0 {
		return nil, 0, badRequestf("networks must be non-empty")
	}
	if len(req.Lanes) == 0 || len(req.Bits) == 0 {
		return nil, 0, badRequestf("lanes and bits axes must be non-empty")
	}
	designs := pixel.Designs()
	if len(req.Designs) > 0 {
		designs = designs[:0]
		for _, name := range req.Designs {
			d, err := pixel.ParseDesign(name)
			if err != nil {
				return nil, 0, err
			}
			designs = append(designs, d)
		}
	}
	names := make([]string, len(designs))
	for i, d := range designs {
		names[i] = d.String()
	}
	D, L, B := len(designs), len(req.Lanes), len(req.Bits)
	points = D * L * B
	if n := len(req.Networks) * points; n > maxSweepJobs {
		return nil, 0, badRequestf("sweep of %d jobs exceeds the %d-job limit", n, maxSweepJobs)
	}
	if target < 1 {
		target = 1
	}

	// Shard sub-requests always carry explicit design names — a worker
	// must price exactly the chunk, never its own "all designs" default.
	add := func(dNames []string, lanes, bits []int, start, count int) {
		sub := api.SweepRequest{Networks: req.Networks, Designs: dNames, Lanes: lanes, Bits: bits}
		shards = append(shards, sweepShard{
			Req:   sub,
			Key:   sweepKey(sub),
			Start: start,
			Count: count,
		})
	}

	switch {
	case target <= 1:
		add(names, req.Lanes, req.Bits, 0, points)
	case target <= D:
		for _, r := range chunkRanges(D, target) {
			add(names[r[0]:r[1]], req.Lanes, req.Bits, r[0]*L*B, (r[1]-r[0])*L*B)
		}
	case target <= D*L:
		perDesign := (target + D - 1) / D
		for di := 0; di < D; di++ {
			for _, r := range chunkRanges(L, perDesign) {
				add(names[di:di+1], req.Lanes[r[0]:r[1]], req.Bits, di*L*B+r[0]*B, (r[1]-r[0])*B)
			}
		}
	default:
		perLane := (target + D*L - 1) / (D * L)
		for di := 0; di < D; di++ {
			for li := 0; li < L; li++ {
				for _, r := range chunkRanges(B, perLane) {
					add(names[di:di+1], req.Lanes[li:li+1], req.Bits[r[0]:r[1]], (di*L+li)*B+r[0], r[1]-r[0])
				}
			}
		}
	}
	return shards, points, nil
}

// mergeSweep assembles shard responses into the single-node response:
// every shard's per-network rows land verbatim in their grid slots.
// Worker results decode into the same float64s a local run would
// produce and Go re-encodes float64 round-trips byte-exactly, so the
// merged payload is byte-identical to one worker pricing the whole
// grid.
func mergeSweep(networks []string, points int, shards []sweepShard, resps []api.SweepResponse) (api.SweepResponse, error) {
	out := api.SweepResponse{Points: points, Results: make(map[string][]api.Result, len(networks))}
	for _, n := range networks {
		out.Results[n] = make([]api.Result, points)
	}
	for i, sh := range shards {
		if resps[i].Points != sh.Count {
			return api.SweepResponse{}, fmt.Errorf("fleet: shard %d returned %d points, want %d", i, resps[i].Points, sh.Count)
		}
		for _, n := range networks {
			rows := resps[i].Results[n]
			if len(rows) != sh.Count {
				return api.SweepResponse{}, fmt.Errorf("fleet: shard %d returned %d rows for %q, want %d", i, len(rows), n, sh.Count)
			}
			copy(out.Results[n][sh.Start:sh.Start+sh.Count], rows)
		}
	}
	return out, nil
}

// robustShard is one worker-sized σ-axis chunk of a robustness run:
// a valid /v1/robustness sub-request whose Sigmas are the contiguous
// axis slice starting at index Lo of the full request.
type robustShard struct {
	Req api.RobustnessRequest
	Key string
	Lo  int
}

// planRobustness validates req as a worker would (maxTrials mirrors
// the worker-side -max-trials cap) and chunks the σ axis into at most
// target shards. σ is the one shardable axis that preserves
// bit-identity: trial seeds deliberately exclude σ (see
// internal/montecarlo), so each worker draws exactly the perturbations
// the full-axis run would for its σ values, and the baseline is
// σ-independent.
func planRobustness(req api.RobustnessRequest, maxTrials, target int) ([]robustShard, error) {
	if _, err := pixel.ParseDesign(req.Design); err != nil {
		return nil, err
	}
	if req.Trials > maxTrials {
		return nil, badRequestf("trials %d exceeds the %d-trial limit", req.Trials, maxTrials)
	}
	if len(req.Sigmas) > maxSigmaPoints {
		return nil, badRequestf("sigma axis of %d points exceeds the %d-point limit", len(req.Sigmas), maxSigmaPoints)
	}
	n := len(req.Sigmas)
	if n == 0 || target <= 1 {
		// Degenerate axes pass through whole so the worker's own
		// validation (and response shape) applies verbatim.
		return []robustShard{{Req: req, Key: robustKey(req)}}, nil
	}
	k := target
	if k > n {
		k = n
	}
	shards := make([]robustShard, 0, k)
	for _, r := range chunkRanges(n, k) {
		sub := req
		sub.Sigmas = req.Sigmas[r[0]:r[1]]
		shards = append(shards, robustShard{Req: sub, Key: robustKey(sub), Lo: r[0]})
	}
	return shards, nil
}

// sweepKey is the consistent-hash routing key of a sweep sub-request,
// stable across repeats so the same chunk lands on the same worker's
// result LRU.
func sweepKey(sub api.SweepRequest) string {
	return fmt.Sprintf("sweep|%q|%v|%v|%v", sub.Networks, sub.Designs, sub.Lanes, sub.Bits)
}

// robustKey is the routing key of a robustness sub-request.
func robustKey(sub api.RobustnessRequest) string {
	k := fmt.Sprintf("robustness|%s|%s|%v|%d|%d|%v", sub.Network, sub.Design, sub.Sigmas, sub.Trials, sub.Seed, sub.ErrorBudget)
	if p := sub.Protection; p != nil {
		k += fmt.Sprintf("|%s:%d:%d:%d", p.Scheme, p.Copies, p.Retries, p.RecalEvery)
	}
	return k
}

// mergeRobustness concatenates shard σ points in axis order and
// reconciles the shared report fields. Baseline is σ-independent, so
// every shard must agree — a mismatch means the fleet is mixing
// incompatible worker builds and the merge refuses rather than guess.
// The protection overheads are pure functions of the max retry factor,
// so the shard achieving the global max also carries the overheads the
// single-node report would.
func mergeRobustness(shards []robustShard, resps []api.RobustnessResponse) (api.RobustnessResponse, error) {
	out := resps[0]
	if len(shards) == 1 {
		return out, nil
	}
	total := 0
	for _, r := range resps {
		total += len(r.Points)
	}
	points := make([]pixel.YieldPoint, 0, total)
	for _, r := range resps {
		points = append(points, r.Points...)
	}
	out.Points = points
	for i := 1; i < len(resps); i++ {
		if !slices.Equal(resps[i].Baseline, resps[0].Baseline) {
			return api.RobustnessResponse{}, fmt.Errorf("fleet: shard %d baseline disagrees with shard 0", i)
		}
	}
	if resps[0].Protection != nil {
		pr := *resps[0].Protection
		pr.Points = nil
		for i, r := range resps {
			if r.Protection == nil {
				return api.RobustnessResponse{}, fmt.Errorf("fleet: shard %d is missing the protection curve", i)
			}
			pr.Points = append(pr.Points, r.Protection.Points...)
			// Strictly-greater keeps the earliest shard on ties, matching
			// the single-node run where one computation takes the max.
			if r.Protection.MaxRetryFactor > pr.MaxRetryFactor {
				pr.MaxRetryFactor = r.Protection.MaxRetryFactor
				pr.EnergyOverhead = r.Protection.EnergyOverhead
				pr.LatencyOverhead = r.Protection.LatencyOverhead
				pr.AreaOverhead = r.Protection.AreaOverhead
			}
		}
		out.Protection = &pr
	}
	return out, nil
}

// chunkRanges splits [0, n) into min(k, n) contiguous half-open
// ranges whose sizes differ by at most one.
func chunkRanges(n, k int) [][2]int {
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	out := make([][2]int, 0, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
