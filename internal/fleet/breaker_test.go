package fleet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestBreakerStateMachine walks the closed → open → half-open → open →
// half-open → closed cycle with synthetic clocks.
func TestBreakerStateMachine(t *testing.T) {
	b := breaker{threshold: 2, cooldown: time.Minute}
	now := time.Unix(1000, 0)

	if !b.allow(now) || b.status() != "closed" || b.isOpen() {
		t.Fatal("fresh breaker must be closed and admitting")
	}
	if opened := b.onFailure(now); opened {
		t.Fatal("one failure below the threshold must not open")
	}
	if opened := b.onFailure(now); !opened {
		t.Fatal("reaching the threshold must report the open transition")
	}
	if b.status() != "open" || !b.isOpen() {
		t.Fatalf("status after threshold = %q, want open", b.status())
	}
	if b.allow(now.Add(30 * time.Second)) {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	if !b.allow(now.Add(61 * time.Second)) {
		t.Fatal("cooldown elapsed but the half-open probe was refused")
	}
	if b.status() != "half-open" {
		t.Fatalf("status after probe admit = %q, want half-open", b.status())
	}
	if b.allow(now.Add(61 * time.Second)) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	probeFail := now.Add(62 * time.Second)
	if opened := b.onFailure(probeFail); !opened {
		t.Fatal("failed half-open probe must report re-opening")
	}
	if b.allow(probeFail.Add(30 * time.Second)) {
		t.Fatal("re-opened breaker admitted a call inside the restarted cooldown")
	}
	if !b.allow(probeFail.Add(61 * time.Second)) {
		t.Fatal("restarted cooldown elapsed but the probe was refused")
	}
	b.onSuccess()
	if b.status() != "closed" || !b.allow(probeFail.Add(62*time.Second)) {
		t.Fatalf("successful probe must close the breaker (status %q)", b.status())
	}
}

// TestBreakerOpenFailureRestartsCooldown: a last-resort call through an
// open breaker that fails again pushes the half-open probe out.
func TestBreakerOpenFailureRestartsCooldown(t *testing.T) {
	b := breaker{threshold: 1, cooldown: time.Minute}
	now := time.Unix(2000, 0)
	if opened := b.onFailure(now); !opened {
		t.Fatal("threshold 1 must open on the first failure")
	}
	b.onFailure(now.Add(30 * time.Second)) // fallback call failed again
	if b.allow(now.Add(61 * time.Second)) {
		t.Fatal("cooldown was not restarted by the open-state failure")
	}
	if !b.allow(now.Add(91 * time.Second)) {
		t.Fatal("restarted cooldown never elapsed")
	}
}

// TestBreakerOpensAndRoutesAround pairs a worker that 500s every API
// call with a healthy one: sweeps stay byte-identical because arms
// fail over, the bad worker's breaker opens after the threshold, and
// later shards skip it without burning attempts.
func TestBreakerOpensAndRoutesAround(t *testing.T) {
	good := startWorkers(t, 1)
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Path == "/healthz" {
			io.WriteString(w, `{"status":"ok"}`+"\n")
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":{"code":"internal","message":"broken worker"}}`+"\n")
	}))
	defer bad.Close()

	req := sweep48()
	status, want := postJSON(t, good[0]+"/v1/sweep", req)
	if status != http.StatusOK {
		t.Fatalf("single node: status %d: %s", status, want)
	}

	c := newTestCoordinator(t, Options{
		Workers:          []string{good[0], bad.URL},
		ShardsPerWorker:  4,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // stays open for the whole test
		ProbeInterval:    time.Hour, // health stays optimistic; the breaker is the mechanism under test
		RetryMaxDelay:    2 * time.Millisecond,
	})
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		status, got := postJSON(t, ts.URL+"/v1/sweep", req)
		if status != http.StatusOK {
			t.Fatalf("sweep %d: status %d: %s", i, status, got)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("sweep %d differs from single node with a broken worker in the ring", i)
		}
	}

	if n := c.metrics.breakerOpens.Load(); n == 0 {
		t.Fatal("the broken worker's breaker never opened")
	}
	if n := c.metrics.breakerSkips.Load(); n == 0 {
		t.Fatal("no candidate scan ever skipped the open breaker")
	}
	for _, w := range c.Workers() {
		if w.Addr == bad.URL && w.Breaker != "open" {
			t.Fatalf("broken worker breaker state = %q, want open", w.Breaker)
		}
	}
}
