package sim

import (
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/interconnect"
	"pixel/internal/phy"
)

func BenchmarkRunNetworkZFNet(b *testing.B) {
	g, err := interconnect.NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(g, arch.MustConfig(arch.OO, 4, 8), Options{MaxEvents: 20_000})
	if err != nil {
		b.Fatal(err)
	}
	net := cnn.ZFNet()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.RunNetwork(net); err != nil {
			b.Fatal(err)
		}
	}
}
