package sim

import (
	"math"
	"strings"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/interconnect"
	"pixel/internal/phy"
)

func newSim(t *testing.T, opt Options) *Sim {
	t.Helper()
	g, err := interconnect.NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, arch.MustConfig(arch.OO, 4, 8), opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	g, _ := interconnect.NewGrid(2, 2, 4, 10*phy.Gigahertz)
	badCfg := arch.MustConfig(arch.EE, 4, 8)
	badCfg.Lanes = 0
	if _, err := New(g, badCfg, Options{}); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := New(g, arch.MustConfig(arch.EE, 4, 8), Options{NeuronBits: -1}); err == nil {
		t.Error("negative option should error")
	}
}

func TestRunLayerMatchesAnalyticBound(t *testing.T) {
	s := newSim(t, Options{})
	l := cnn.LeNet().Layers[0]
	st, err := s.RunLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	bound := s.AnalyticBound(l)
	// The event simulation of the two-stage pipeline should land on
	// the analytic bound (same model, played out), within batching
	// rounding.
	if math.Abs(st.MakespanS-bound)/bound > 0.02 {
		t.Errorf("simulated %v vs analytic %v", st.MakespanS, bound)
	}
	if st.Rounds < 1 {
		t.Error("rounds must be at least 1")
	}
}

func TestComputeBoundLayerSaturatesTiles(t *testing.T) {
	// With the OO config's ~44 ns rounds vs sub-ns broadcasts, compute
	// binds: tile occupancy ~100%, waveguide mostly idle.
	s := newSim(t, Options{})
	st, err := s.RunLayer(cnn.VGG16().Layers[2])
	if err != nil {
		t.Fatal(err)
	}
	if st.Bottleneck != "compute" {
		t.Errorf("bottleneck = %s, want compute", st.Bottleneck)
	}
	if st.ComputeBusyFrac < 0.95 {
		t.Errorf("compute busy = %v, want ~1", st.ComputeBusyFrac)
	}
	if st.BroadcastBusyFrac > 0.2 {
		t.Errorf("broadcast busy = %v, want small", st.BroadcastBusyFrac)
	}
}

func TestBroadcastBoundWhenPayloadHuge(t *testing.T) {
	// Force a broadcast-bound pipeline with an absurd payload.
	s := newSim(t, Options{NeuronBits: 1 << 14})
	st, err := s.RunLayer(cnn.LeNet().Layers[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Bottleneck != "broadcast" {
		t.Errorf("bottleneck = %s, want broadcast", st.Bottleneck)
	}
	if st.BroadcastBusyFrac < 0.95 {
		t.Errorf("broadcast busy = %v, want ~1", st.BroadcastBusyFrac)
	}
}

func TestDoubleBufferingHelps(t *testing.T) {
	l := cnn.LeNet().Layers[1]
	with := newSim(t, Options{NeuronBits: 4096})
	without := newSim(t, Options{NeuronBits: 4096, DisableDoubleBuffer: true})
	a, err := with.RunLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := without.RunLayer(l)
	if err != nil {
		t.Fatal(err)
	}
	if a.MakespanS >= b.MakespanS {
		t.Errorf("double buffering should shorten the makespan: %v vs %v", a.MakespanS, b.MakespanS)
	}
	// Serialized: makespan ~ rounds*(b+c); overlapped: ~ rounds*max(b,c).
	bound := without.AnalyticBound(l)
	if math.Abs(b.MakespanS-bound)/bound > 0.02 {
		t.Errorf("serialized makespan %v vs analytic %v", b.MakespanS, bound)
	}
}

func TestLargeLayerBatching(t *testing.T) {
	// VGG16 Conv2 needs ~29M rounds on this grid; the simulator must
	// batch rather than explode.
	s := newSim(t, Options{MaxEvents: 10_000})
	st, err := s.RunLayer(cnn.VGG16().Layers[1])
	if err != nil {
		t.Fatal(err)
	}
	if st.RoundsPerStep <= 1 {
		t.Errorf("expected batching, got per-step %v", st.RoundsPerStep)
	}
	// Batched simulation still lands on the analytic bound.
	bound := s.AnalyticBound(cnn.VGG16().Layers[1])
	if math.Abs(st.MakespanS-bound)/bound > 0.05 {
		t.Errorf("batched makespan %v vs analytic %v", st.MakespanS, bound)
	}
}

func TestRunNetwork(t *testing.T) {
	s := newSim(t, Options{})
	stats, total, err := s.RunNetwork(cnn.LeNet())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(cnn.LeNet().Layers) {
		t.Errorf("stats = %d layers", len(stats))
	}
	var sum float64
	for _, st := range stats {
		sum += st.MakespanS
	}
	if math.Abs(sum-total) > 1e-12*total {
		t.Error("network total must equal the layer sum")
	}
	if _, _, err := s.RunNetwork(cnn.Network{}); err == nil {
		t.Error("invalid network should error")
	}
}

func TestRunLayerRejectsInvalid(t *testing.T) {
	s := newSim(t, Options{})
	if _, err := s.RunLayer(cnn.Layer{Name: "bad", Type: cnn.Conv}); err == nil {
		t.Error("invalid layer should error")
	}
}

func TestFormatStats(t *testing.T) {
	s := newSim(t, Options{})
	st, err := s.RunLayer(cnn.LeNet().Layers[0])
	if err != nil {
		t.Fatal(err)
	}
	out := FormatStats(st)
	if !strings.Contains(out, "Conv1") || !strings.Contains(out, "bound") {
		t.Errorf("FormatStats = %q", out)
	}
}
