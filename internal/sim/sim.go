// Package sim is a discrete-event simulator for layer execution on the
// PIXEL tile grid. Where package mapper computes closed-form schedule
// bounds, sim *plays the schedule out*: neuron broadcasts occupy row
// waveguides, tiles compute rounds, input double-buffering overlaps the
// two, and the simulator reports the measured makespan, per-resource
// occupancy and the bottleneck — including the stall patterns the
// closed forms gloss over.
//
// The execution model per layer: work proceeds in rounds (the
// architecture model's unit: every tile consumes one burst per round).
// Round r needs its neuron broadcast completed before compute starts;
// each row waveguide carries one broadcast at a time; each tile
// computes one round at a time. With double-buffered inputs the
// broadcast of round r+1 may overlap the compute of round r.
package sim

import (
	"container/heap"
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/interconnect"
	"pixel/internal/phy"
)

// event is one scheduled state change.
type event struct {
	at   float64
	kind eventKind
	// round identifies the work round the event belongs to.
	round int
}

type eventKind int

const (
	broadcastDone eventKind = iota
	computeDone
)

// eventQueue is a min-heap on event time.
type eventQueue []event

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any          { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// Options configures a simulation.
type Options struct {
	// NeuronBits is the payload fired per broadcast per tile; zero
	// means lanes x bits (one burst per lane).
	NeuronBits int
	// MaxEvents bounds the event count; layers needing more rounds are
	// coarsened by batching rounds (RoundsPerStep grows). Zero means
	// 200k.
	MaxEvents int
	// DisableDoubleBuffer serializes broadcast and compute (no input
	// overlap), for measuring what the buffering buys.
	DisableDoubleBuffer bool
}

// LayerStats is the simulation outcome for one layer.
type LayerStats struct {
	Layer string
	// Rounds is the number of work rounds executed; RoundsPerStep > 1
	// means the simulator batched rounds to respect MaxEvents.
	Rounds        float64
	RoundsPerStep float64
	// MakespanS is the simulated end-to-end time [s].
	MakespanS float64
	// BroadcastBusyFrac / ComputeBusyFrac are resource occupancies in
	// [0,1] over the makespan.
	BroadcastBusyFrac float64
	ComputeBusyFrac   float64
	// Bottleneck names the binding resource: "broadcast" or "compute".
	Bottleneck string
}

// Sim couples a grid and a configuration.
type Sim struct {
	grid *interconnect.Grid
	cfg  arch.Config
	opt  Options
}

// New validates and returns a simulator.
func New(g *interconnect.Grid, cfg arch.Config, opt Options) (*Sim, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.NeuronBits < 0 || opt.MaxEvents < 0 {
		return nil, fmt.Errorf("sim: negative option")
	}
	if opt.NeuronBits == 0 {
		opt.NeuronBits = cfg.Lanes * cfg.Bits
	}
	if opt.MaxEvents == 0 {
		opt.MaxEvents = 200_000
	}
	return &Sim{grid: g, cfg: cfg, opt: opt}, nil
}

// broadcastTime returns the waveguide occupancy of one round's neuron
// firing [s].
func (s *Sim) broadcastTime() float64 {
	return s.grid.BroadcastLatency(s.opt.NeuronBits)
}

// RunLayer simulates one layer and returns the measured statistics.
func (s *Sim) RunLayer(l cnn.Layer) (LayerStats, error) {
	if err := l.Validate(); err != nil {
		return LayerStats{}, err
	}
	counts := l.Counts(cnn.ModePaper)
	gridOps := float64(s.grid.Tiles()) * float64(s.cfg.Lanes) * s.cfg.OperandsPerBurst()
	rounds := counts.Mul / gridOps
	if rounds < 1 {
		rounds = 1
	}

	// Coarsen if the round count would blow the event budget: batch
	// k rounds per simulated step.
	steps := int(rounds)
	if steps < 1 {
		steps = 1
	}
	perStep := 1.0
	if maxSteps := s.opt.MaxEvents / 2; steps > maxSteps {
		perStep = float64(steps) / float64(maxSteps)
		steps = maxSteps
	}

	bTime := s.broadcastTime() * perStep
	cTime := arch.RoundTime(s.cfg) * perStep

	var q eventQueue
	heap.Init(&q)

	// Resource-availability clocks.
	var wgFree, tileFree float64
	var wgBusy, tileBusy float64
	var clock float64

	// Kick off the first broadcast.
	heap.Push(&q, event{at: bTime, kind: broadcastDone, round: 0})
	wgFree = bTime
	wgBusy += bTime
	launched := 1

	var done int
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		clock = e.at
		switch e.kind {
		case broadcastDone:
			// The round's inputs are in; compute starts when a tile
			// slot frees (all tiles work in lockstep per round, so the
			// grid is one compute resource).
			start := e.at
			if tileFree > start {
				start = tileFree
			}
			tileFree = start + cTime
			tileBusy += cTime
			heap.Push(&q, event{at: tileFree, kind: computeDone, round: e.round})
			// Double buffering: the next broadcast may start as soon
			// as the waveguide frees; without it, only after this
			// round's compute finishes (handled on computeDone).
			if !s.opt.DisableDoubleBuffer && launched < steps {
				start := e.at
				if wgFree > start {
					start = wgFree
				}
				wgFree = start + bTime
				wgBusy += bTime
				heap.Push(&q, event{at: wgFree, kind: broadcastDone, round: launched})
				launched++
			}
		case computeDone:
			done++
			if s.opt.DisableDoubleBuffer && launched < steps {
				start := e.at
				if wgFree > start {
					start = wgFree
				}
				wgFree = start + bTime
				wgBusy += bTime
				heap.Push(&q, event{at: wgFree, kind: broadcastDone, round: launched})
				launched++
			}
		}
	}
	if done != steps {
		return LayerStats{}, fmt.Errorf("sim: executed %d of %d steps", done, steps)
	}

	st := LayerStats{
		Layer:         l.Name,
		Rounds:        rounds,
		RoundsPerStep: perStep,
		MakespanS:     clock,
	}
	if clock > 0 {
		st.BroadcastBusyFrac = wgBusy / clock
		st.ComputeBusyFrac = tileBusy / clock
	}
	if bTime > cTime {
		st.Bottleneck = "broadcast"
	} else {
		st.Bottleneck = "compute"
	}
	return st, nil
}

// RunNetwork simulates every layer and returns the per-layer stats and
// the summed makespan.
func (s *Sim) RunNetwork(net cnn.Network) ([]LayerStats, float64, error) {
	if err := net.Validate(); err != nil {
		return nil, 0, err
	}
	var stats []LayerStats
	var total float64
	for _, l := range net.Layers {
		st, err := s.RunLayer(l)
		if err != nil {
			return nil, 0, fmt.Errorf("sim: %s: %w", l.Name, err)
		}
		stats = append(stats, st)
		total += st.MakespanS
	}
	return stats, total, nil
}

// AnalyticBound returns the pipeline lower bound for a layer: the
// first broadcast plus rounds times the binding stage — what the
// simulated makespan converges to for long layers.
func (s *Sim) AnalyticBound(l cnn.Layer) float64 {
	counts := l.Counts(cnn.ModePaper)
	gridOps := float64(s.grid.Tiles()) * float64(s.cfg.Lanes) * s.cfg.OperandsPerBurst()
	rounds := counts.Mul / gridOps
	if rounds < 1 {
		rounds = 1
	}
	b := s.broadcastTime()
	c := arch.RoundTime(s.cfg)
	stage := c
	if b > stage {
		stage = b
	}
	if s.opt.DisableDoubleBuffer {
		stage = b + c
		return rounds * stage
	}
	return b + rounds*stage
}

// FormatStats renders one layer's stats for logs.
func FormatStats(st LayerStats) string {
	return fmt.Sprintf("%s: %s makespan, %.0f rounds (x%.3g batched), broadcast %.0f%% / compute %.0f%% busy, %s-bound",
		st.Layer, phy.FormatTime(st.MakespanS), st.Rounds, st.RoundsPerStep,
		100*st.BroadcastBusyFrac, 100*st.ComputeBusyFrac, st.Bottleneck)
}
