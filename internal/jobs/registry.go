package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. Queued jobs wait for a running slot; the other
// three are terminal.
const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// Task is one resumable unit of asynchronous work. Tasks are built by a
// Factory from a (kind, spec) pair, possibly restored from a snapshot,
// and run to completion once.
type Task interface {
	Checkpointable
	// Progress returns completed and total slot counts (restored slots
	// count as completed).
	Progress() (done, total int)
	// Run executes the remaining work, publishing progress and partial
	// results through emit, and returns the final result. The result
	// must be JSON-marshalable.
	Run(ctx context.Context, emit func(typ string, data any)) (result any, err error)
}

// PartialReporter is an optional Task extension: a snapshot of partial
// results for status polls (e.g. the σ points already fully sampled).
type PartialReporter interface {
	Partial() any
}

// Factory rebuilds a Task from its kind and spec — both at job creation
// and when a restarted process re-adopts persisted jobs.
type Factory func(kind string, spec json.RawMessage) (Task, error)

// ErrRegistryFull reports that the bounded registry cannot admit
// another job until finished ones expire or are deleted.
var ErrRegistryFull = errors.New("jobs: registry full")

// RegistryOptions configures a Registry.
type RegistryOptions struct {
	// Factory builds tasks from (kind, spec). Required.
	Factory Factory
	// Manager persists job metadata and checkpoints; nil keeps jobs in
	// memory only (no restart recovery).
	Manager *Manager
	// MaxJobs bounds how many jobs (any state) the registry tracks;
	// <= 0 means DefaultMaxJobs.
	MaxJobs int
	// MaxRunning bounds concurrently executing jobs; <= 0 means
	// DefaultMaxRunning. Excess jobs queue.
	MaxRunning int
	// TTL is how long finished jobs (and their files) are retained;
	// <= 0 means DefaultTTL.
	TTL time.Duration
	// SaveEvery is the periodic checkpoint cadence while a job runs;
	// <= 0 means DefaultSaveEvery. Ignored without a Manager.
	SaveEvery time.Duration
	// Logger receives recovery and persistence diagnostics; nil means
	// slog.Default().
	Logger *slog.Logger
}

// Registry defaults.
const (
	DefaultMaxJobs    = 256
	DefaultMaxRunning = 2
	DefaultTTL        = 15 * time.Minute
	DefaultSaveEvery  = 5 * time.Second
)

// File-name suffixes of a job's two on-disk artifacts.
const (
	metaSuffix = ".job"
	ckptSuffix = ".ckpt"
)

// jobMeta is the persisted job record: enough to re-adopt the job after
// a restart (spec re-builds the task, EventSeq keeps the SSE stream
// monotone) and to keep serving status for finished jobs.
type jobMeta struct {
	ID          string          `json:"id"`
	Kind        string          `json:"kind"`
	Spec        json.RawMessage `json:"spec"`
	State       Status          `json:"state"`
	CreatedUnix int64           `json:"created_unix"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	EventSeq    int64           `json:"event_seq"`
}

// Job is one tracked asynchronous run. All mutable state is behind the
// registry's lock; read it through Snapshot.
type Job struct {
	ID     string
	Kind   string
	Spec   json.RawMessage
	Events *EventLog

	task    Task
	cancel  context.CancelFunc
	state   Status
	created time.Time
	adopted bool
	errMsg  string
	result  json.RawMessage
	done    time.Time
	deleted bool
}

// JobStatus is a consistent point-in-time view of a job.
type JobStatus struct {
	ID          string
	Kind        string
	State       Status
	Done        int
	Total       int
	CreatedUnix int64
	Adopted     bool
	Error       string
	Result      json.RawMessage
	Partial     any
}

// Registry owns asynchronous jobs: creation, bounded admission, queued
// execution, periodic checkpointing, TTL eviction and restart recovery.
// Construct with NewRegistry; Close releases its goroutines.
type Registry struct {
	factory    Factory
	mgr        *Manager
	maxJobs    int
	maxRunning int
	ttl        time.Duration
	saveEvery  time.Duration
	logger     *slog.Logger

	mu   sync.Mutex
	jobs map[string]*Job

	slots      chan struct{}
	wg         sync.WaitGroup
	baseCtx    context.Context
	baseCancel context.CancelFunc
	closing    bool
}

// NewRegistry builds a registry and starts its TTL janitor.
func NewRegistry(opts RegistryOptions) *Registry {
	if opts.Factory == nil {
		panic("jobs: RegistryOptions.Factory is required")
	}
	maxJobs := opts.MaxJobs
	if maxJobs <= 0 {
		maxJobs = DefaultMaxJobs
	}
	maxRunning := opts.MaxRunning
	if maxRunning <= 0 {
		maxRunning = DefaultMaxRunning
	}
	ttl := opts.TTL
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	saveEvery := opts.SaveEvery
	if saveEvery <= 0 {
		saveEvery = DefaultSaveEvery
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		factory:    opts.Factory,
		mgr:        opts.Manager,
		maxJobs:    maxJobs,
		maxRunning: maxRunning,
		ttl:        ttl,
		saveEvery:  saveEvery,
		logger:     logger,
		jobs:       map[string]*Job{},
		slots:      make(chan struct{}, maxRunning),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	r.wg.Add(1)
	go r.janitor()
	return r
}

// newID returns a fresh 16-hex-digit job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failing means the host is unusable
	}
	return hex.EncodeToString(b[:])
}

// Create admits a new job: builds its task, persists its metadata (so a
// crash between creation and completion is recoverable) and queues it
// for execution.
func (r *Registry) Create(kind string, spec json.RawMessage) (*Job, error) {
	task, err := r.factory(kind, spec)
	if err != nil {
		return nil, err
	}
	j := &Job{
		ID:      newID(),
		Kind:    kind,
		Spec:    append(json.RawMessage(nil), spec...),
		Events:  NewEventLog(0, 0),
		task:    task,
		state:   StatusQueued,
		created: time.Now(),
	}
	r.mu.Lock()
	if r.closing {
		r.mu.Unlock()
		return nil, errors.New("jobs: registry is shutting down")
	}
	if len(r.jobs) >= r.maxJobs {
		r.evictExpiredLocked(time.Now())
	}
	if len(r.jobs) >= r.maxJobs {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: %d jobs tracked", ErrRegistryFull, r.maxJobs)
	}
	r.jobs[j.ID] = j
	r.mu.Unlock()
	r.persistMeta(j)
	r.launch(j)
	return j, nil
}

// Get returns the job with the given id.
func (r *Registry) Get(id string) (*Job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// Snapshot returns a consistent view of the job's state and progress.
func (r *Registry) Snapshot(j *Job) JobStatus {
	r.mu.Lock()
	st := JobStatus{
		ID:          j.ID,
		Kind:        j.Kind,
		State:       j.state,
		CreatedUnix: j.created.Unix(),
		Adopted:     j.adopted,
		Error:       j.errMsg,
		Result:      j.result,
	}
	task := j.task
	r.mu.Unlock()
	if task != nil {
		st.Done, st.Total = task.Progress()
		if pr, ok := task.(PartialReporter); ok && !st.State.Terminal() {
			st.Partial = pr.Partial()
		}
	}
	return st
}

// Delete cancels the job if it is still running and removes it — and
// its persisted files — entirely.
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	j, ok := r.jobs[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("jobs: no job %q", id)
	}
	delete(r.jobs, id)
	j.deleted = true
	cancel := j.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	r.removeFiles(id)
	return nil
}

// Recover scans the manager directory and re-adopts every persisted
// job: finished jobs come back as queryable records, unfinished jobs
// restore their checkpoint (when present and intact) and resume
// running. It returns how many unfinished jobs resumed.
func (r *Registry) Recover() (resumed int, err error) {
	if r.mgr == nil {
		return 0, nil
	}
	names, err := r.mgr.List(metaSuffix)
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		payload, err := r.mgr.Load(name)
		if err != nil {
			r.logger.Warn("jobs: skipping unreadable job record", "file", name, "err", err)
			continue
		}
		var meta jobMeta
		if err := json.Unmarshal(payload, &meta); err != nil || meta.ID == "" {
			r.logger.Warn("jobs: skipping malformed job record", "file", name, "err", err)
			continue
		}
		j := &Job{
			ID:      meta.ID,
			Kind:    meta.Kind,
			Spec:    meta.Spec,
			Events:  NewEventLog(meta.EventSeq, 0),
			state:   meta.State,
			created: time.Unix(meta.CreatedUnix, 0),
			adopted: true,
			errMsg:  meta.Error,
			result:  meta.Result,
		}
		if meta.State.Terminal() {
			j.done = time.Now() // retention clock restarts at adoption
			r.mu.Lock()
			r.jobs[j.ID] = j
			r.mu.Unlock()
			continue
		}
		task, err := r.factory(meta.Kind, meta.Spec)
		if err != nil {
			r.logger.Warn("jobs: cannot rebuild job, dropping", "id", meta.ID, "err", err)
			r.removeFiles(meta.ID)
			continue
		}
		if err := r.mgr.LoadInto(meta.ID+ckptSuffix, task); err != nil {
			if errors.Is(err, ErrNotFound) {
				r.logger.Info("jobs: no checkpoint, restarting job from scratch", "id", meta.ID)
			} else {
				// Corrupt or mismatched checkpoint: report it and rerun —
				// the whole point of bit-exact resume is that a from-scratch
				// run converges to the identical result.
				r.logger.Warn("jobs: checkpoint unusable, restarting job from scratch", "id", meta.ID, "err", err)
			}
		}
		j.task = task
		j.state = StatusQueued
		r.mu.Lock()
		r.jobs[j.ID] = j
		r.mu.Unlock()
		done, total := task.Progress()
		r.append(j, "adopted", map[string]int{"done": done, "total": total})
		r.persistMeta(j)
		r.launch(j)
		resumed++
	}
	return resumed, nil
}

// append publishes an event on the job's log, logging (not failing) on
// marshal errors.
func (r *Registry) append(j *Job, typ string, data any) {
	if _, err := j.Events.Append(typ, data); err != nil {
		r.logger.Warn("jobs: dropping unmarshalable event", "id", j.ID, "type", typ, "err", err)
	}
}

// launch queues the job for execution.
func (r *Registry) launch(j *Job) {
	r.wg.Add(1)
	ctx, cancel := context.WithCancel(r.baseCtx)
	r.mu.Lock()
	j.cancel = cancel
	r.mu.Unlock()
	go func() {
		defer r.wg.Done()
		defer cancel()
		select {
		case r.slots <- struct{}{}:
		case <-ctx.Done():
			r.finalize(j, nil, ctx.Err())
			return
		}
		defer func() { <-r.slots }()
		r.mu.Lock()
		j.state = StatusRunning
		r.mu.Unlock()

		stopSave := make(chan struct{})
		var saveWG sync.WaitGroup
		if r.mgr != nil {
			saveWG.Add(1)
			go func() {
				defer saveWG.Done()
				t := time.NewTicker(r.saveEvery)
				defer t.Stop()
				for {
					select {
					case <-t.C:
						r.checkpoint(j)
					case <-stopSave:
						return
					}
				}
			}()
		}
		result, err := j.task.Run(ctx, func(typ string, data any) { r.append(j, typ, data) })
		close(stopSave)
		saveWG.Wait()
		r.finalize(j, result, err)
	}()
}

// checkpoint persists the job's engine snapshot and its metadata (the
// meta carries the event seq, keeping a restarted stream monotone).
func (r *Registry) checkpoint(j *Job) {
	r.mu.Lock()
	skip := j.deleted || j.state.Terminal()
	r.mu.Unlock()
	if skip || r.mgr == nil {
		return
	}
	if err := r.mgr.Save(j.ID+ckptSuffix, j.task); err != nil {
		r.logger.Warn("jobs: checkpoint failed", "id", j.ID, "err", err)
	}
	r.persistMeta(j)
}

// finalize records the job's terminal state, emits the terminal event
// and settles its on-disk artifacts.
func (r *Registry) finalize(j *Job, result any, err error) {
	r.mu.Lock()
	closing := r.closing
	deleted := j.deleted
	r.mu.Unlock()

	if err != nil && errors.Is(err, context.Canceled) && closing && !deleted {
		// Shutdown, not failure: flush a final checkpoint and leave the
		// persisted state "running" so the next process re-adopts it.
		if r.mgr != nil {
			if err := r.mgr.Save(j.ID+ckptSuffix, j.task); err != nil {
				r.logger.Warn("jobs: shutdown checkpoint failed", "id", j.ID, "err", err)
			}
			r.mu.Lock()
			j.state = StatusRunning
			r.mu.Unlock()
			r.persistMeta(j)
		}
		return
	}

	state := StatusSucceeded
	var resJSON json.RawMessage
	var msg string
	switch {
	case err == nil:
		buf, merr := json.Marshal(result)
		if merr != nil {
			state, msg = StatusFailed, fmt.Sprintf("marshal result: %v", merr)
		} else {
			resJSON = buf
		}
	case errors.Is(err, context.Canceled):
		state = StatusCancelled
	default:
		state, msg = StatusFailed, err.Error()
	}

	r.mu.Lock()
	j.state = state
	j.errMsg = msg
	j.result = resJSON
	j.done = time.Now()
	r.mu.Unlock()

	done, total := 0, 0
	if j.task != nil {
		done, total = j.task.Progress()
	}
	r.append(j, string(state), map[string]any{"done": done, "total": total, "error": msg})

	if deleted {
		return // files already removed by Delete
	}
	if r.mgr != nil {
		// The run is settled: the checkpoint has served its purpose, the
		// meta record keeps status queryable until TTL eviction.
		if err := r.mgr.Remove(j.ID + ckptSuffix); err != nil {
			r.logger.Warn("jobs: remove checkpoint", "id", j.ID, "err", err)
		}
		r.persistMeta(j)
	}
}

// persistMeta writes the job's metadata record through the manager.
func (r *Registry) persistMeta(j *Job) {
	if r.mgr == nil {
		return
	}
	r.mu.Lock()
	meta := jobMeta{
		ID:          j.ID,
		Kind:        j.Kind,
		Spec:        j.Spec,
		State:       j.state,
		CreatedUnix: j.created.Unix(),
		Error:       j.errMsg,
		Result:      j.result,
		EventSeq:    j.Events.NextSeq(),
	}
	if meta.State == StatusQueued {
		meta.State = StatusRunning // queued is a process-local distinction
	}
	r.mu.Unlock()
	buf, err := json.Marshal(meta)
	if err != nil {
		r.logger.Warn("jobs: marshal job record", "id", j.ID, "err", err)
		return
	}
	if err := r.mgr.SaveBytes(j.ID+metaSuffix, buf); err != nil {
		r.logger.Warn("jobs: persist job record", "id", j.ID, "err", err)
	}
}

// removeFiles deletes the job's persisted artifacts.
func (r *Registry) removeFiles(id string) {
	if r.mgr == nil {
		return
	}
	if err := r.mgr.Remove(id + metaSuffix); err != nil {
		r.logger.Warn("jobs: remove job record", "id", id, "err", err)
	}
	if err := r.mgr.Remove(id + ckptSuffix); err != nil {
		r.logger.Warn("jobs: remove checkpoint", "id", id, "err", err)
	}
}

// janitor evicts expired finished jobs on a TTL-derived cadence.
func (r *Registry) janitor() {
	defer r.wg.Done()
	period := r.ttl / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			r.mu.Lock()
			expired := r.evictExpiredLocked(time.Now())
			r.mu.Unlock()
			for _, id := range expired {
				r.removeFiles(id)
			}
		case <-r.baseCtx.Done():
			return
		}
	}
}

// evictExpiredLocked drops finished jobs older than the TTL and returns
// their ids (callers remove files outside the lock).
func (r *Registry) evictExpiredLocked(now time.Time) []string {
	var expired []string
	for id, j := range r.jobs {
		if j.state.Terminal() && now.Sub(j.done) > r.ttl {
			delete(r.jobs, id)
			j.deleted = true
			expired = append(expired, id)
		}
	}
	return expired
}

// Close stops the registry: running jobs are cancelled, flush a final
// checkpoint, and stay persisted as unfinished so the next process
// re-adopts them. Close blocks until every job goroutine has settled.
func (r *Registry) Close() {
	r.mu.Lock()
	r.closing = true
	r.mu.Unlock()
	r.baseCancel()
	r.wg.Wait()
}
