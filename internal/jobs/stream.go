package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// Sentinel errors StreamEvents returns before writing any response
// bytes, so callers can still render their usual error envelope.
var (
	// ErrCannotStream reports a ResponseWriter without http.Flusher.
	ErrCannotStream = errors.New("jobs: response writer cannot stream")
	// ErrBadLastEventID reports an unparsable Last-Event-ID header.
	ErrBadLastEventID = errors.New("jobs: bad Last-Event-ID")
)

// StreamEvents streams j's event log to w as server-sent events.
// Events are replayed from the request's Last-Event-ID (every event
// since process start is retained, and seqs stay monotone across
// restarts), comment heartbeats keep idle connections alive, and the
// stream closes after the terminal event. A job recovered in a
// terminal state has no terminal event in its post-restart log;
// terminalData supplies the payload of the synthesized one so those
// streams still end. Both pixeld's job routes and the fleet
// coordinator's serve this exact loop, which is why it lives here and
// not in a handler.
func (r *Registry) StreamEvents(w http.ResponseWriter, req *http.Request, j *Job, heartbeat time.Duration, terminalData func(JobStatus) any) error {
	flusher, ok := w.(http.Flusher)
	if !ok {
		return ErrCannotStream
	}
	last := int64(-1)
	if v := req.Header.Get("Last-Event-ID"); v != "" {
		seq, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("%w %q", ErrBadLastEventID, v)
		}
		last = seq
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	for {
		ch := j.Events.Changed()
		for _, e := range j.Events.After(last) {
			fmt.Fprintf(w, "id: %d\nevent: %s\n", e.Seq, e.Type)
			if len(e.Data) > 0 {
				fmt.Fprintf(w, "data: %s\n", e.Data)
			}
			fmt.Fprint(w, "\n")
			last = e.Seq
			if e.Terminal() {
				flusher.Flush()
				return nil
			}
		}
		if st := r.Snapshot(j); st.State.Terminal() && j.Events.NextSeq() == last+1 {
			data, _ := json.Marshal(terminalData(st))
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", j.Events.NextSeq(), st.State, data)
			flusher.Flush()
			return nil
		}
		flusher.Flush()
		select {
		case <-ch:
		case <-ticker.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		case <-req.Context().Done():
			return nil
		}
	}
}
