package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeTask is a controllable resumable task: total steps, optionally
// gated one token at a time, snapshotting its completed count. ran
// counts steps executed by THIS instance, so recovery tests can prove
// restored work was skipped rather than redone.
type fakeTask struct {
	mu    sync.Mutex
	done  int
	total int
	ran   int
	gate  chan struct{}
	fail  bool
}

func (f *fakeTask) Progress() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.done, f.total
}

func (f *fakeTask) Snapshot() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return json.Marshal(map[string]int{"done": f.done})
}

func (f *fakeTask) Restore(b []byte) error {
	var s struct{ Done int }
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	f.mu.Lock()
	f.done = s.Done
	f.mu.Unlock()
	return nil
}

func (f *fakeTask) Run(ctx context.Context, emit func(string, any)) (any, error) {
	for {
		f.mu.Lock()
		d, t := f.done, f.total
		f.mu.Unlock()
		if d >= t {
			break
		}
		if f.gate != nil {
			select {
			case <-f.gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f.mu.Lock()
		f.done++
		f.ran++
		d = f.done
		f.mu.Unlock()
		emit("progress", map[string]int{"done": d, "total": t})
		if f.fail {
			return nil, errors.New("step exploded")
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return map[string]int{"done": f.done, "ran": f.ran}, nil
}

// waitTerminal polls the job's event log until a terminal event lands.
func waitTerminal(t *testing.T, j *Job) Event {
	t.Helper()
	deadline := time.After(10 * time.Second)
	var seq int64 = -1
	for {
		ch := j.Events.Changed()
		for _, e := range j.Events.After(seq) {
			seq = e.Seq
			if e.Terminal() {
				return e
			}
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("no terminal event")
		}
	}
}

func singleTaskFactory(tasks map[string]*fakeTask) Factory {
	return func(kind string, spec json.RawMessage) (Task, error) {
		task, ok := tasks[kind]
		if !ok {
			return nil, errors.New("unknown kind " + kind)
		}
		return task, nil
	}
}

func TestRegistryLifecycle(t *testing.T) {
	task := &fakeTask{total: 3}
	r := NewRegistry(RegistryOptions{Factory: singleTaskFactory(map[string]*fakeTask{"fake": task})})
	defer r.Close()

	j, err := r.Create("fake", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if e := waitTerminal(t, j); e.Type != EventSucceeded {
		t.Fatalf("terminal event %q, want succeeded", e.Type)
	}
	st := r.Snapshot(j)
	if st.State != StatusSucceeded || st.Done != 3 || st.Total != 3 {
		t.Fatalf("status = %+v", st)
	}
	var res struct{ Done, Ran int }
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Done != 3 || res.Ran != 3 {
		t.Fatalf("result = %+v", res)
	}
	// Every progress event is retained: seqs 0..2 progress + terminal.
	evs := j.Events.After(-1)
	if len(evs) != 4 {
		t.Fatalf("%d events, want 4", len(evs))
	}
}

func TestRegistryFailedJob(t *testing.T) {
	task := &fakeTask{total: 3, fail: true}
	r := NewRegistry(RegistryOptions{Factory: singleTaskFactory(map[string]*fakeTask{"fake": task})})
	defer r.Close()
	j, err := r.Create("fake", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := waitTerminal(t, j); e.Type != EventFailed {
		t.Fatalf("terminal event %q, want failed", e.Type)
	}
	st := r.Snapshot(j)
	if st.State != StatusFailed || st.Error != "step exploded" {
		t.Fatalf("status = %+v", st)
	}
}

func TestRegistryDeleteCancelsRunning(t *testing.T) {
	task := &fakeTask{total: 1000, gate: make(chan struct{})}
	r := NewRegistry(RegistryOptions{Factory: singleTaskFactory(map[string]*fakeTask{"fake": task})})
	defer r.Close()
	j, err := r.Create("fake", nil)
	if err != nil {
		t.Fatal(err)
	}
	task.gate <- struct{}{} // let one step through so it is mid-run
	if err := r.Delete(j.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(j.ID); ok {
		t.Fatal("deleted job still resolvable")
	}
	if e := waitTerminal(t, j); e.Type != EventCancelled {
		t.Fatalf("terminal event %q, want cancelled", e.Type)
	}
}

func TestRegistryCapacity(t *testing.T) {
	blocked := &fakeTask{total: 10, gate: make(chan struct{})}
	r := NewRegistry(RegistryOptions{
		Factory: singleTaskFactory(map[string]*fakeTask{"fake": blocked}),
		MaxJobs: 1,
	})
	defer r.Close()
	if _, err := r.Create("fake", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Create("fake", nil); !errors.Is(err, ErrRegistryFull) {
		t.Fatalf("second create: %v, want ErrRegistryFull", err)
	}
}

func TestRegistryTTLEviction(t *testing.T) {
	mgr, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	task := &fakeTask{total: 1}
	r := NewRegistry(RegistryOptions{
		Factory: singleTaskFactory(map[string]*fakeTask{"fake": task}),
		Manager: mgr,
		TTL:     10 * time.Millisecond,
	})
	defer r.Close()
	j, err := r.Create("fake", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	deadline := time.After(10 * time.Second)
	for {
		if _, ok := r.Get(j.ID); !ok {
			break
		}
		select {
		case <-deadline:
			t.Fatal("finished job never evicted")
		case <-time.After(5 * time.Millisecond):
		}
	}
	names, err := mgr.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("files survived eviction: %v", names)
	}
}

// TestRegistryShutdownRecovery is the re-adoption contract: a registry
// closed mid-run leaves a running job checkpointed on disk; a fresh
// registry over the same directory re-adopts it, restores the completed
// prefix, and finishes having executed only the remaining steps.
func TestRegistryShutdownRecovery(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10
	first := &fakeTask{total: total, gate: make(chan struct{}, total)}
	r1 := NewRegistry(RegistryOptions{
		Factory:   singleTaskFactory(map[string]*fakeTask{"fake": first}),
		Manager:   mgr,
		SaveEvery: time.Hour, // only the shutdown flush persists
	})
	j1, err := r1.Create("fake", json.RawMessage(`{"n":10}`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		first.gate <- struct{}{}
	}
	// Wait until the four gated steps have actually executed.
	deadline := time.After(10 * time.Second)
	for {
		if d, _ := first.Progress(); d == 4 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("steps never ran")
		case <-time.After(time.Millisecond):
		}
	}
	seqBefore := j1.Events.NextSeq()
	r1.Close() // cancels the run and flushes the final checkpoint

	second := &fakeTask{total: total}
	mgr2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(RegistryOptions{
		Factory: singleTaskFactory(map[string]*fakeTask{"fake": second}),
		Manager: mgr2,
	})
	defer r2.Close()
	resumed, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1", resumed)
	}
	j2, ok := r2.Get(j1.ID)
	if !ok {
		t.Fatal("re-adopted job not resolvable under its original id")
	}
	if e := waitTerminal(t, j2); e.Type != EventSucceeded {
		t.Fatalf("terminal event %q, want succeeded", e.Type)
	}
	st := r2.Snapshot(j2)
	if !st.Adopted {
		t.Fatal("re-adopted job not marked adopted")
	}
	var res struct{ Done, Ran int }
	if err := json.Unmarshal(st.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Done != total {
		t.Fatalf("done = %d, want %d", res.Done, total)
	}
	if res.Ran != total-4 {
		t.Fatalf("second process ran %d steps, want %d (restored prefix must be skipped)", res.Ran, total-4)
	}
	// The resumed stream must continue past the pre-restart seqs.
	evs := j2.Events.After(-1)
	if len(evs) == 0 || evs[0].Seq < seqBefore {
		t.Fatalf("resumed stream restarted its seqs: first=%d, pre-restart next=%d", evs[0].Seq, seqBefore)
	}
	if evs[0].Type != "adopted" {
		t.Fatalf("first post-restart event %q, want adopted", evs[0].Type)
	}
}

// TestRegistryRestartStreamContinuity is satellite coverage for the
// Last-Event-ID contract: a live subscriber follows a job's event log
// through a registry shutdown, then resumes on the re-adopted job with
// After(lastSeq) — exactly what an SSE client reconnecting with
// Last-Event-ID does. The merged stream must be strictly monotone with
// no duplicates, pick up with the "adopted" marker, and end terminal.
func TestRegistryRestartStreamContinuity(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	const total = 8
	first := &fakeTask{total: total, gate: make(chan struct{}, total)}
	r1 := NewRegistry(RegistryOptions{
		Factory:   singleTaskFactory(map[string]*fakeTask{"fake": first}),
		Manager:   mgr,
		SaveEvery: time.Hour,
	})
	j1, err := r1.Create("fake", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}

	// Live subscriber: drain j1's log exactly the way the SSE handler
	// does — Changed before After — while the producer is running.
	var got []Event
	lastSeq := int64(-1)
	drain := func(log *EventLog) {
		for _, e := range log.After(lastSeq) {
			if e.Seq <= lastSeq {
				t.Fatalf("event seq %d not strictly after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			got = append(got, e)
		}
	}
	for i := 0; i < 3; i++ {
		first.gate <- struct{}{}
	}
	deadline := time.After(10 * time.Second)
	for len(got) < 3 {
		ch := j1.Events.Changed()
		drain(j1.Events)
		if len(got) >= 3 {
			break
		}
		select {
		case <-ch:
		case <-deadline:
			t.Fatalf("subscriber saw %d events before restart, want 3", len(got))
		}
	}
	preRestart := len(got)
	r1.Close() // the stream dies mid-run, like a coordinator crash

	second := &fakeTask{total: total}
	mgr2, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRegistry(RegistryOptions{
		Factory: singleTaskFactory(map[string]*fakeTask{"fake": second}),
		Manager: mgr2,
	})
	defer r2.Close()
	if resumed, err := r2.Recover(); err != nil || resumed != 1 {
		t.Fatalf("recover: resumed=%d err=%v", resumed, err)
	}
	j2, ok := r2.Get(j1.ID)
	if !ok {
		t.Fatal("re-adopted job not resolvable")
	}
	waitTerminal(t, j2)

	// Reconnect with the pre-restart Last-Event-ID and drain to the end.
	drain(j2.Events)
	if len(got) <= preRestart {
		t.Fatal("no events delivered after the restart resume")
	}
	resumeHead := got[preRestart]
	if resumeHead.Type != "adopted" {
		t.Fatalf("first post-restart event %q, want adopted", resumeHead.Type)
	}
	seen := make(map[int64]bool, len(got))
	prev := int64(-1)
	for _, e := range got {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d in merged stream", e.Seq)
		}
		seen[e.Seq] = true
		if e.Seq <= prev {
			t.Fatalf("merged stream not strictly increasing: %d after %d", e.Seq, prev)
		}
		prev = e.Seq
	}
	if last := got[len(got)-1]; last.Type != EventSucceeded {
		t.Fatalf("merged stream ends with %q, want succeeded", last.Type)
	}
}

// TestRegistryRecoverFinishedJob proves terminal jobs stay queryable
// across a restart (until TTL eviction) without re-running anything.
func TestRegistryRecoverFinishedJob(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	task := &fakeTask{total: 2}
	r1 := NewRegistry(RegistryOptions{
		Factory: singleTaskFactory(map[string]*fakeTask{"fake": task}),
		Manager: mgr,
	})
	j1, err := r1.Create("fake", nil)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j1)
	r1.Close()

	r2 := NewRegistry(RegistryOptions{
		Factory: func(string, json.RawMessage) (Task, error) {
			t.Fatal("factory must not run for finished jobs")
			return nil, nil
		},
		Manager: mgr,
	})
	defer r2.Close()
	resumed, err := r2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 0 {
		t.Fatalf("resumed %d, want 0", resumed)
	}
	j2, ok := r2.Get(j1.ID)
	if !ok {
		t.Fatal("finished job lost across restart")
	}
	st := r2.Snapshot(j2)
	if st.State != StatusSucceeded || len(st.Result) == 0 {
		t.Fatalf("recovered status = %+v", st)
	}
}
