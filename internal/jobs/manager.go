// Package jobs is the durable-job substrate behind long Monte-Carlo
// and sweep runs: a Checkpointable contract for engines whose progress
// can be snapshotted mid-run, a Manager that persists those snapshots
// atomically (write-temp → fsync → rename, versioned header, CRC-32
// payload check, so a torn write is detected instead of loaded), a
// replayable EventLog that feeds both the CLI progress printer and the
// server's SSE streams, and a Registry that owns the lifecycle of
// asynchronous jobs — bounded capacity, TTL eviction of finished jobs,
// periodic checkpointing, and recovery of unfinished jobs after a
// restart.
package jobs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Checkpointable is work whose completed portion can be captured and
// reinstalled. Snapshot must be safe to call concurrently with the run
// it observes; Restore is called before the run (re)starts. The engine
// contract (fixed slot placement, per-slot seed derivation) makes a
// restored run bit-identical to an uninterrupted one.
type Checkpointable interface {
	// Snapshot returns a self-contained encoding of the completed work.
	Snapshot() ([]byte, error)
	// Restore reinstalls a snapshot previously produced by Snapshot on
	// an equivalently-configured instance. Implementations reject
	// snapshots taken under a different spec.
	Restore(snapshot []byte) error
}

// Snapshot-file format: an 8-byte magic whose last byte is the format
// version, the big-endian payload length, the CRC-32 (IEEE) of the
// payload, then the payload. Any truncation fails the length check and
// any bit rot fails the CRC, so Load reports ErrCorrupt instead of
// handing garbage to Restore.
var snapshotMagic = [8]byte{'P', 'I', 'X', 'S', 'N', 'A', 'P', 0x01}

const snapshotHeaderLen = 8 + 8 + 4

// Sentinel errors of the snapshot store.
var (
	// ErrNotFound reports that no snapshot exists under the name.
	ErrNotFound = errors.New("jobs: snapshot not found")
	// ErrCorrupt reports a snapshot that failed the header, length or
	// checksum validation — typically a torn or truncated write.
	ErrCorrupt = errors.New("jobs: corrupt snapshot")
)

// Manager persists snapshots in one directory, one file per name.
// Saves are atomic: the bytes land in a temp file which is fsynced and
// then renamed over the target, so a crash mid-save leaves the previous
// snapshot intact. A Manager is safe for concurrent use.
type Manager struct {
	dir string
}

// NewManager returns a manager rooted at dir, creating it if needed.
func NewManager(dir string) (*Manager, error) {
	if dir == "" {
		return nil, errors.New("jobs: manager needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs: create snapshot dir: %w", err)
	}
	return &Manager{dir: dir}, nil
}

// Dir returns the manager's snapshot directory.
func (m *Manager) Dir() string { return m.dir }

// path validates a snapshot name (a bare file name, no separators) and
// returns its absolute location.
func (m *Manager) path(name string) (string, error) {
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("jobs: bad snapshot name %q", name)
	}
	return filepath.Join(m.dir, name), nil
}

// Save snapshots c and persists it under name atomically.
func (m *Manager) Save(name string, c Checkpointable) error {
	payload, err := c.Snapshot()
	if err != nil {
		return fmt.Errorf("jobs: snapshot %s: %w", name, err)
	}
	return m.SaveBytes(name, payload)
}

// SaveBytes persists an already-encoded payload under name atomically.
func (m *Manager) SaveBytes(name string, payload []byte) error {
	target, err := m.path(name)
	if err != nil {
		return err
	}
	buf := make([]byte, snapshotHeaderLen, snapshotHeaderLen+len(payload))
	copy(buf, snapshotMagic[:])
	binary.BigEndian.PutUint64(buf[8:], uint64(len(payload)))
	binary.BigEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)

	f, err := os.CreateTemp(m.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("jobs: save %s: %w", name, err)
	}
	tmp := f.Name()
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: save %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("jobs: save %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: save %s: %w", name, err)
	}
	if err := os.Rename(tmp, target); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("jobs: save %s: %w", name, err)
	}
	// Durability of the rename itself: sync the directory (best effort —
	// not every platform supports fsync on directories).
	if d, err := os.Open(m.dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Load reads and validates the snapshot payload saved under name.
// Missing files return ErrNotFound; header, length or checksum
// mismatches return errors wrapping ErrCorrupt.
func (m *Manager) Load(name string) ([]byte, error) {
	target, err := m.path(name)
	if err != nil {
		return nil, err
	}
	buf, err := os.ReadFile(target)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("jobs: load %s: %w", name, err)
	}
	if len(buf) < snapshotHeaderLen {
		return nil, fmt.Errorf("%w: %s: %d bytes is shorter than the %d-byte header",
			ErrCorrupt, name, len(buf), snapshotHeaderLen)
	}
	if [8]byte(buf[:8]) != snapshotMagic {
		if [7]byte(buf[:7]) == [7]byte(snapshotMagic[:7]) {
			return nil, fmt.Errorf("%w: %s: unsupported snapshot version %d (this build reads version %d)",
				ErrCorrupt, name, buf[7], snapshotMagic[7])
		}
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, name)
	}
	want := binary.BigEndian.Uint64(buf[8:])
	payload := buf[snapshotHeaderLen:]
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("%w: %s: payload is %d bytes, header says %d (torn write)",
			ErrCorrupt, name, len(payload), want)
	}
	if sum := crc32.ChecksumIEEE(payload); sum != binary.BigEndian.Uint32(buf[16:]) {
		return nil, fmt.Errorf("%w: %s: payload checksum mismatch", ErrCorrupt, name)
	}
	return payload, nil
}

// LoadInto loads the snapshot under name and restores it into c.
func (m *Manager) LoadInto(name string, c Checkpointable) error {
	payload, err := m.Load(name)
	if err != nil {
		return err
	}
	if err := c.Restore(payload); err != nil {
		return fmt.Errorf("jobs: restore %s: %w", name, err)
	}
	return nil
}

// Remove deletes the snapshot under name; a missing file is not an
// error (the job may simply never have checkpointed).
func (m *Manager) Remove(name string) error {
	target, err := m.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(target); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobs: remove %s: %w", name, err)
	}
	return nil
}

// List returns the sorted snapshot names carrying the given suffix
// (temp files from in-progress saves are excluded).
func (m *Manager) List(suffix string) ([]string, error) {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil, fmt.Errorf("jobs: list snapshots: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.Contains(name, ".tmp-") {
			continue
		}
		if suffix == "" || strings.HasSuffix(name, suffix) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}
