package jobs

import (
	"fmt"
	"sync"
	"testing"
)

func TestEventLogSeqAndReplay(t *testing.T) {
	l := NewEventLog(0, 0)
	for i := 0; i < 5; i++ {
		e, err := l.Append("progress", map[string]int{"done": i})
		if err != nil {
			t.Fatal(err)
		}
		if e.Seq != int64(i) {
			t.Fatalf("event %d got seq %d", i, e.Seq)
		}
	}
	if got := l.After(-1); len(got) != 5 {
		t.Fatalf("After(-1) = %d events, want 5", len(got))
	}
	got := l.After(2)
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("After(2) = %+v, want seqs 3,4", got)
	}
	if got := l.After(4); len(got) != 0 {
		t.Fatalf("After(4) = %+v, want empty", got)
	}
	if l.NextSeq() != 5 {
		t.Fatalf("NextSeq = %d, want 5", l.NextSeq())
	}
}

func TestEventLogStartSeq(t *testing.T) {
	l := NewEventLog(42, 0)
	e, err := l.Append("adopted", nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 42 {
		t.Fatalf("restarted log first seq = %d, want 42", e.Seq)
	}
}

// TestEventLogChanged pins the race-free subscription pattern: grabbing
// Changed before After guarantees an append between the two calls is
// not missed.
func TestEventLogChanged(t *testing.T) {
	l := NewEventLog(0, 0)
	ch := l.Changed()
	if got := l.After(-1); len(got) != 0 {
		t.Fatalf("fresh log has %d events", len(got))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := l.Append("progress", nil); err != nil {
			t.Error(err)
		}
	}()
	<-ch // must be closed by the append
	<-done
	if got := l.After(-1); len(got) != 1 {
		t.Fatalf("after wake: %d events, want 1", len(got))
	}
}

func TestEventLogCapDropsOldest(t *testing.T) {
	l := NewEventLog(0, 4)
	for i := 0; i < 10; i++ {
		if _, err := l.Append("progress", i); err != nil {
			t.Fatal(err)
		}
	}
	got := l.After(-1)
	if len(got) != 4 || got[0].Seq != 6 || got[3].Seq != 9 {
		t.Fatalf("capped log = %+v, want seqs 6..9", got)
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(0, 0)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := l.Append("progress", fmt.Sprintf("%d/%d", w, i)); err != nil {
					t.Error(err)
				}
				l.After(int64(i))
				l.Changed()
			}
		}(w)
	}
	wg.Wait()
	evs := l.After(-1)
	if len(evs) != 400 {
		t.Fatalf("got %d events, want 400", len(evs))
	}
	for i, e := range evs {
		if e.Seq != int64(i) {
			t.Fatalf("event %d has seq %d; log not dense", i, e.Seq)
		}
	}
}

func TestProgressStride(t *testing.T) {
	if ProgressStride(10) != 1 {
		t.Fatalf("small jobs should emit every completion")
	}
	if s := ProgressStride(25600); s != 100 {
		t.Fatalf("ProgressStride(25600) = %d, want 100", s)
	}
}

func TestTerminalEvents(t *testing.T) {
	for _, typ := range []string{EventSucceeded, EventFailed, EventCancelled} {
		if !(Event{Type: typ}).Terminal() {
			t.Fatalf("%s should be terminal", typ)
		}
	}
	if (Event{Type: "progress"}).Terminal() {
		t.Fatal("progress should not be terminal")
	}
}
