package jobs

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// memState is a trivial Checkpointable: its snapshot is its buffer.
type memState struct{ buf []byte }

func (m *memState) Snapshot() ([]byte, error) { return append([]byte(nil), m.buf...), nil }
func (m *memState) Restore(b []byte) error    { m.buf = append([]byte(nil), b...); return nil }

func TestManagerRoundTrip(t *testing.T) {
	mgr, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("forty-two trials of one hundred")
	if err := mgr.Save("run.ckpt", &memState{buf: want}); err != nil {
		t.Fatal(err)
	}
	var back memState
	if err := mgr.LoadInto("run.ckpt", &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.buf, want) {
		t.Fatalf("round trip changed payload: got %q want %q", back.buf, want)
	}
	// Overwrites are atomic replacements, not appends.
	want2 := []byte("short")
	if err := mgr.SaveBytes("run.ckpt", want2); err != nil {
		t.Fatal(err)
	}
	got, err := mgr.Load("run.ckpt")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want2) {
		t.Fatalf("overwrite: got %q want %q", got, want2)
	}
}

func TestManagerNotFound(t *testing.T) {
	mgr, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Load("nope.ckpt"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing snapshot: got %v, want ErrNotFound", err)
	}
	// Removing a missing snapshot is not an error.
	if err := mgr.Remove("nope.ckpt"); err != nil {
		t.Fatalf("remove missing: %v", err)
	}
}

// TestManagerTornWrite is the corruption contract: a snapshot truncated
// mid-file (as a crash mid-write before the rename could never produce,
// but a torn disk can) must surface ErrCorrupt, never a short payload.
func TestManagerTornWrite(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("yield curve "), 64)
	if err := mgr.SaveBytes("run.ckpt", payload); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.ckpt")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(full) - 1, len(full) / 2, snapshotHeaderLen, snapshotHeaderLen - 2, 3, 0} {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := mgr.Load("run.ckpt"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrCorrupt", cut, err)
		}
	}
}

func TestManagerBitRot(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SaveBytes("run.ckpt", []byte("pristine payload bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.ckpt")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[snapshotHeaderLen+4] ^= 0x20 // flip one payload bit
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Load("run.ckpt"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit rot: got %v, want ErrCorrupt", err)
	}
}

func TestManagerVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	mgr, err := NewManager(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.SaveBytes("run.ckpt", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "run.ckpt")
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[7] = 0x7f // future format version
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Load("run.ckpt")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("future version: got %v, want ErrCorrupt", err)
	}
}

func TestManagerRejectsBadNames(t *testing.T) {
	mgr, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "a/b", "../escape", ".hidden"} {
		if err := mgr.SaveBytes(name, []byte("x")); err == nil {
			t.Fatalf("name %q: save accepted, want error", name)
		}
		if _, err := mgr.Load(name); err == nil {
			t.Fatalf("name %q: load accepted, want error", name)
		}
	}
}

func TestManagerList(t *testing.T) {
	mgr, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"b.job", "a.job", "a.ckpt"} {
		if err := mgr.SaveBytes(name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mgr.List(".job")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "a.job" || got[1] != "b.job" {
		t.Fatalf("List(.job) = %v, want [a.job b.job]", got)
	}
	all, err := mgr.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("List() = %v, want 3 entries", all)
	}
}
