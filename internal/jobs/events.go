package jobs

import (
	"encoding/json"
	"sync"
)

// Event is one progress notification of a job: a monotonically
// increasing sequence number (the SSE event id, so reconnecting clients
// can resume with Last-Event-ID), a type ("progress", "point",
// "succeeded", "failed", "cancelled", ...) and an optional JSON
// payload.
type Event struct {
	Seq  int64           `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data,omitempty"`
}

// Terminal event types: once one is appended the stream is complete and
// subscribers can hang up.
const (
	EventSucceeded = "succeeded"
	EventFailed    = "failed"
	EventCancelled = "cancelled"
)

// Terminal reports whether the event ends its stream.
func (e Event) Terminal() bool {
	switch e.Type {
	case EventSucceeded, EventFailed, EventCancelled:
		return true
	}
	return false
}

// DefaultEventCap bounds an EventLog's retained history. Producers are
// expected to throttle progress events (see ProgressStride) well below
// it, so in practice the full history is retained and a reconnecting
// client misses nothing; the cap is a safety valve against an unruly
// producer, not a working limit.
const DefaultEventCap = 8192

// EventLog is an append-only, replayable event history with change
// notification — the one stream both the CLI progress printer and the
// server's SSE handlers consume. The zero value is not usable;
// construct with NewEventLog. Safe for concurrent use.
type EventLog struct {
	mu      sync.Mutex
	events  []Event
	nextSeq int64
	dropped int64
	cap     int
	wake    chan struct{}
}

// NewEventLog returns a log starting at seq; cap <= 0 means
// DefaultEventCap. A non-zero start seq is how a re-adopted job
// continues its stream where the previous process left off.
func NewEventLog(startSeq int64, capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCap
	}
	return &EventLog{nextSeq: startSeq, cap: capacity, wake: make(chan struct{})}
}

// Append assigns the next sequence number to an event of the given type
// and payload (marshalled to JSON; nil for none) and wakes subscribers.
func (l *EventLog) Append(typ string, data any) (Event, error) {
	var raw json.RawMessage
	if data != nil {
		buf, err := json.Marshal(data)
		if err != nil {
			return Event{}, err
		}
		raw = buf
	}
	l.mu.Lock()
	e := Event{Seq: l.nextSeq, Type: typ, Data: raw}
	l.nextSeq++
	l.events = append(l.events, e)
	if len(l.events) > l.cap {
		over := len(l.events) - l.cap
		l.events = append(l.events[:0:0], l.events[over:]...)
		l.dropped += int64(over)
	}
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
	return e, nil
}

// After returns a copy of every retained event with Seq > seq, in
// order. Pass -1 for the full retained history.
func (l *EventLog) After(seq int64) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := len(l.events)
	for i > 0 && l.events[i-1].Seq > seq {
		i--
	}
	return append([]Event(nil), l.events[i:]...)
}

// Changed returns a channel closed at the next Append. Grab it before
// calling After to avoid missing a concurrent append, then select on it
// when After comes back empty.
func (l *EventLog) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wake
}

// NextSeq returns the sequence number the next event will get — the
// value a checkpoint persists so a restarted job's stream stays
// monotone.
func (l *EventLog) NextSeq() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// ProgressStride returns how many completions should pass between
// progress events for a job of the given size: every completion for
// small jobs, ~256 events across the run for large ones. Count-based
// (not time-based) so event streams are deterministic for a given
// schedule.
func ProgressStride(total int) int {
	stride := total / 256
	if stride < 1 {
		stride = 1
	}
	return stride
}
