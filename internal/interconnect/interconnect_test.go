package interconnect

import (
	"math"
	"strings"
	"testing"

	"pixel/internal/photonics"
	"pixel/internal/phy"
)

func TestNewGridValidates(t *testing.T) {
	g, err := NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if err != nil {
		t.Fatal(err)
	}
	if g.Tiles() != 16 {
		t.Errorf("Tiles = %d", g.Tiles())
	}
	if g.RowWavelengths() != 16 || g.ColWavelengths() != 16 {
		t.Error("wavelength counts wrong")
	}
}

func TestGridWavelengthCeiling(t *testing.T) {
	// 16 tiles x 16 lanes = 256 wavelengths > 128: must be rejected.
	if _, err := NewGrid(4, 16, 16, 10*phy.Gigahertz); err == nil {
		t.Error("over-budget row should be rejected")
	} else if !strings.Contains(err.Error(), "128") {
		t.Errorf("error should cite the ceiling: %v", err)
	}
	// 8 tiles x 16 lanes = 128: exactly at the ceiling, allowed.
	if _, err := NewGrid(8, 8, 16, 10*phy.Gigahertz); err != nil {
		t.Errorf("at-ceiling grid should be accepted: %v", err)
	}
	// Column direction is also checked.
	if _, err := NewGrid(16, 4, 16, 10*phy.Gigahertz); err == nil {
		t.Error("over-budget column should be rejected")
	}
}

func TestGridValidateRejectsBadParams(t *testing.T) {
	cases := []struct{ r, c, l int }{
		{0, 4, 4}, {4, 0, 4}, {4, 4, 0},
	}
	for _, c := range cases {
		if _, err := NewGrid(c.r, c.c, c.l, 10*phy.Gigahertz); err == nil {
			t.Errorf("grid %+v should be rejected", c)
		}
	}
	if _, err := NewGrid(4, 4, 4, 0); err == nil {
		t.Error("zero bit rate should be rejected")
	}
}

func TestBandAllocationDisjoint(t *testing.T) {
	g, _ := NewGrid(4, 4, 4, 10*phy.Gigahertz)
	seen := map[int]bool{}
	for i := 0; i < g.Cols; i++ {
		lo, hi := g.Band(i)
		if hi-lo != g.Lanes {
			t.Errorf("band %d size %d, want %d", i, hi-lo, g.Lanes)
		}
		for w := lo; w < hi; w++ {
			if seen[w] {
				t.Fatalf("wavelength %d assigned twice", w)
			}
			seen[w] = true
		}
	}
	if len(seen) != g.RowWavelengths() {
		t.Errorf("allocated %d wavelengths, want %d", len(seen), g.RowWavelengths())
	}
}

func TestSerializationLatency(t *testing.T) {
	g, _ := NewGrid(4, 4, 4, 10*phy.Gigahertz)
	// 16 bits over 4 lanes at 10 GHz = 4 slots = 400 ps.
	if got := g.SerializationLatency(16); math.Abs(got-400*phy.Picosecond) > 1e-15 {
		t.Errorf("SerializationLatency(16) = %v, want 400ps", got)
	}
	// 17 bits needs a fifth slot.
	if got := g.SerializationLatency(17); math.Abs(got-500*phy.Picosecond) > 1e-15 {
		t.Errorf("SerializationLatency(17) = %v, want 500ps", got)
	}
	if g.SerializationLatency(0) != 0 {
		t.Error("zero bits should take zero time")
	}
}

func TestBroadcastLatencyIncludesFlight(t *testing.T) {
	g, _ := NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if g.BroadcastLatency(16) <= g.SerializationLatency(16) {
		t.Error("broadcast must include flight time")
	}
	// 3 tiles x 500um pitch = 1.5mm -> ~15.7ps flight.
	if got := g.FlightTime(); math.Abs(got-15.675*phy.Picosecond) > 0.1*phy.Picosecond {
		t.Errorf("FlightTime = %v, want ~15.7ps", got)
	}
}

func TestRowLinkBudgetScalesWithListeners(t *testing.T) {
	small, _ := NewGrid(2, 2, 4, 10*phy.Gigahertz)
	big, _ := NewGrid(2, 8, 4, 10*phy.Gigahertz)
	ps, pb := small.RequiredLaunchPower(), big.RequiredLaunchPower()
	if pb <= ps {
		t.Errorf("more listeners should need more launch power: %v vs %v", pb, ps)
	}
	// The derived power closes the budget.
	b := big.RowLinkBudget(pb)
	if !b.Closes() {
		t.Error("derived launch power must close the worst-case budget")
	}
}

func TestBroadcastEnergyComponentsPositive(t *testing.T) {
	g, _ := NewGrid(4, 4, 4, 10*phy.Gigahertz)
	laser := photonics.DefaultLaser(g.Lanes, g.RequiredLaunchPower())
	e := g.BroadcastEnergy(64, laser)
	if e <= 0 {
		t.Fatal("broadcast energy must be positive")
	}
	// Energy grows with payload.
	if g.BroadcastEnergy(128, laser) <= e {
		t.Error("bigger payload should cost more")
	}
	if g.BroadcastEnergy(0, laser) != 0 {
		t.Error("no payload should be free")
	}
}

func TestTwoDBroadcast(t *testing.T) {
	g, _ := NewGrid(8, 4, 4, 10*phy.Gigahertz)
	// Column flight covers 7 pitches vs the row's 3.
	if g.ColFlightTime() <= g.FlightTime() {
		t.Error("taller grid: column flight should exceed row flight")
	}
	twoD := g.TwoDBroadcastLatency(64)
	if twoD <= g.BroadcastLatency(64) || twoD <= g.ColBroadcastLatency(64) {
		t.Error("2-D broadcast must cover both hops")
	}
	want := g.BroadcastLatency(64) + g.ColBroadcastLatency(64)
	if math.Abs(twoD-want) > 1e-18 {
		t.Errorf("2-D latency = %v, want %v", twoD, want)
	}
}

func TestWaveguideArea(t *testing.T) {
	g, _ := NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if g.WaveguideArea() <= 0 {
		t.Error("waveguide area must be positive")
	}
	// A 1x1 grid has no inter-tile waveguides.
	solo, _ := NewGrid(1, 1, 4, 10*phy.Gigahertz)
	if got := solo.WaveguideArea(); got != 0 {
		t.Errorf("1x1 grid area = %v, want 0", got)
	}
}
