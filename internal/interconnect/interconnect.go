// Package interconnect models PIXEL's two-dimensional photonic fabric
// (Figure 3): OMAC tiles arranged in a grid, connected by x- and
// y-dimension WDM waveguides operated in the multiple-write-single-read
// (MWSR) discipline of Section III-A — every tile owns a dedicated band
// of wavelengths on which it fires its input neurons, and every tile on
// the waveguide hears all bands on its home channel.
//
// The package answers the architectural questions the paper's
// communication model needs: wavelength allocation (with the 128-channel
// comb-laser ceiling), serialization latency for firing a neuron
// vector, per-hop flight time, broadcast energy, and the worst-case link
// budget across all listener ring pass-bys.
package interconnect

import (
	"fmt"

	"pixel/internal/photonics"
	"pixel/internal/phy"
)

// MaxWavelengths is the per-waveguide WDM channel ceiling: the paper's
// on-chip comb laser provides up to 128 wavelengths per channel.
const MaxWavelengths = 128

// Grid is a rows x cols arrangement of OMAC tiles with photonic x/y
// interconnect.
type Grid struct {
	// Rows and Cols give the tile arrangement.
	Rows, Cols int
	// Lanes is the number of wavelengths each tile transmits on (the
	// OMAC lane count L).
	Lanes int
	// BitRate is the optical line rate [Hz].
	BitRate float64
	// TilePitch is the center-to-center tile spacing [m].
	TilePitch float64
	// MRR holds the ring parameters of the listener filter banks.
	MRR photonics.MRRParams
	// PD is the receiving detector.
	PD photonics.Photodetector
	// MarginDB is the link-budget margin [dB].
	MarginDB float64
}

// NewGrid validates and returns a tile grid. It errors when a row or
// column would need more wavelengths than the comb laser provides —
// the scalability ceiling of the MWSR discipline.
func NewGrid(rows, cols, lanes int, bitRate float64) (*Grid, error) {
	g := &Grid{
		Rows:      rows,
		Cols:      cols,
		Lanes:     lanes,
		BitRate:   bitRate,
		TilePitch: 500 * phy.Micrometer,
		MRR:       photonics.DefaultMRRParams(),
		PD:        photonics.DefaultPhotodetector(),
		MarginDB:  3,
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Validate reports an error for unusable grids.
func (g *Grid) Validate() error {
	switch {
	case g.Rows < 1 || g.Cols < 1:
		return fmt.Errorf("interconnect: grid %dx%d must have at least one tile", g.Rows, g.Cols)
	case g.Lanes < 1:
		return fmt.Errorf("interconnect: lanes must be >= 1")
	case g.BitRate <= 0:
		return fmt.Errorf("interconnect: bit rate must be positive")
	case g.TilePitch <= 0:
		return fmt.Errorf("interconnect: tile pitch must be positive")
	}
	if need := g.Cols * g.Lanes; need > MaxWavelengths {
		return fmt.Errorf("interconnect: row waveguide needs %d wavelengths (%d tiles x %d lanes) > %d available",
			need, g.Cols, g.Lanes, MaxWavelengths)
	}
	if need := g.Rows * g.Lanes; need > MaxWavelengths {
		return fmt.Errorf("interconnect: column waveguide needs %d wavelengths (%d tiles x %d lanes) > %d available",
			need, g.Rows, g.Lanes, MaxWavelengths)
	}
	return nil
}

// Tiles returns the total tile count.
func (g *Grid) Tiles() int { return g.Rows * g.Cols }

// Band returns the wavelength band [lo, hi) tile index i transmits on
// within its waveguide (MWSR: bands are disjoint per writer).
func (g *Grid) Band(i int) (lo, hi int) {
	return i * g.Lanes, (i + 1) * g.Lanes
}

// RowWavelengths returns the number of active wavelengths on a row
// waveguide.
func (g *Grid) RowWavelengths() int { return g.Cols * g.Lanes }

// ColWavelengths returns the number of active wavelengths on a column
// waveguide.
func (g *Grid) ColWavelengths() int { return g.Rows * g.Lanes }

// RowLength returns the physical length of a row waveguide [m].
func (g *Grid) RowLength() float64 { return float64(g.Cols-1) * g.TilePitch }

// ColLength returns the physical length of a column waveguide [m].
func (g *Grid) ColLength() float64 { return float64(g.Rows-1) * g.TilePitch }

// FlightTime returns the worst-case optical flight time across a row
// waveguide [s].
func (g *Grid) FlightTime() float64 {
	wg := photonics.DefaultWaveguide(g.RowLength())
	return wg.Delay()
}

// SerializationLatency returns the time [s] to fire `bits` bits from one
// tile using its Lanes wavelengths in parallel.
func (g *Grid) SerializationLatency(bits int) float64 {
	if bits <= 0 {
		return 0
	}
	slots := phy.CeilDiv(bits, g.Lanes)
	return float64(slots) / g.BitRate
}

// BroadcastLatency returns the time [s] for a fired neuron vector of
// `bits` bits to be valid at every tile of a row: serialization plus the
// worst-case flight.
func (g *Grid) BroadcastLatency(bits int) float64 {
	return g.SerializationLatency(bits) + g.FlightTime()
}

// RowLinkBudget returns the worst-case link budget on a row waveguide:
// the signal from the first tile passes the ring banks of every other
// tile (2 rings per lane per listener pass-by) before its final drop.
func (g *Grid) RowLinkBudget(launchPerWavelength float64) photonics.LinkBudget {
	wg := photonics.DefaultWaveguide(g.RowLength())
	passbys := 0
	if g.Cols > 1 {
		passbys = (g.Cols - 1) * g.Lanes
	}
	return photonics.LinkBudget{
		LaserPowerPerWavelength: launchPerWavelength,
		LossesDB: map[string]float64{
			"modulator":    1.0,
			"waveguide":    wg.LossDB(),
			"ring-passbys": 2 * g.MRR.ThroughLossDB * float64(passbys),
			"drop":         g.MRR.DropLossDB,
		},
		Detector: g.PD,
		MarginDB: g.MarginDB,
	}
}

// RequiredLaunchPower returns the per-wavelength laser power [W] for the
// worst-case row path to close.
func (g *Grid) RequiredLaunchPower() float64 {
	return 1.01 * g.RowLinkBudget(0).RequiredLaserPower()
}

// BroadcastEnergy returns the photonic energy [J] to fire `bits` bits on
// a row: modulation at the writer, laser wall-plug for the serialized
// duration, and detection at the single reader of the MWSR channel.
func (g *Grid) BroadcastEnergy(bits int, laser photonics.Laser) float64 {
	if bits <= 0 {
		return 0
	}
	mod := g.MRR.SwitchEnergyPerBit * float64(bits)
	duration := g.SerializationLatency(bits)
	laserE := laser.PowerPerWavelength * float64(g.Lanes) * duration / laser.WallPlugEfficiency
	detect := g.PD.EnergyPerBit * float64(bits)
	return mod + laserE + detect
}

// ColFlightTime returns the worst-case optical flight time across a
// column waveguide [s].
func (g *Grid) ColFlightTime() float64 {
	wg := photonics.DefaultWaveguide(g.ColLength())
	return wg.Delay()
}

// ColBroadcastLatency returns the y-dimension analogue of
// BroadcastLatency: firing `bits` bits down a column.
func (g *Grid) ColBroadcastLatency(bits int) float64 {
	return g.SerializationLatency(bits) + g.ColFlightTime()
}

// TwoDBroadcastLatency returns the time [s] for a payload to reach
// every tile of the grid via the x-then-y discipline of Figure 3: the
// row broadcast delivers to every column head, then all columns fire in
// parallel.
func (g *Grid) TwoDBroadcastLatency(bits int) float64 {
	return g.BroadcastLatency(bits) + g.ColBroadcastLatency(bits)
}

// WaveguideArea returns the layout area [m^2] of all row and column
// waveguides at the standard pitch.
func (g *Grid) WaveguideArea() float64 {
	wgRow := photonics.DefaultWaveguide(g.RowLength())
	wgCol := photonics.DefaultWaveguide(g.ColLength())
	return float64(g.Rows)*wgRow.Area() + float64(g.Cols)*wgCol.Area()
}
