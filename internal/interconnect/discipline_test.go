package interconnect

import (
	"testing"

	"pixel/internal/photonics"
	"pixel/internal/phy"
)

func testLaser(g *Grid) photonics.Laser {
	return photonics.DefaultLaser(g.Lanes, g.RequiredLaunchPower())
}

func TestDisciplineStrings(t *testing.T) {
	if MWSR.String() != "MWSR" || SWMR.String() != "SWMR" {
		t.Error("discipline names wrong")
	}
}

func TestRowBroadcastValidation(t *testing.T) {
	g, _ := NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if _, err := g.RowBroadcast(0, MWSR, testLaser(g)); err == nil {
		t.Error("zero payload should error")
	}
	if _, err := g.RowBroadcast(64, Discipline(9), testLaser(g)); err == nil {
		t.Error("unknown discipline should error")
	}
}

func TestSWMRBroadcastsFasterMWSRCheaperPower(t *testing.T) {
	g, err := NewGrid(4, 8, 4, 10*phy.Gigahertz)
	if err != nil {
		t.Fatal(err)
	}
	mwsr, swmr, err := g.CompareDisciplines(128, testLaser(g))
	if err != nil {
		t.Fatal(err)
	}
	// SWMR: one transmission, lowest broadcast latency.
	if swmr.Transmissions != 1 {
		t.Errorf("SWMR transmissions = %d, want 1", swmr.Transmissions)
	}
	if swmr.Latency >= mwsr.Latency {
		t.Errorf("SWMR latency %v should beat MWSR %v for broadcast", swmr.Latency, mwsr.Latency)
	}
	// MWSR: per-wavelength launch power stays flat; SWMR must feed the
	// split.
	if swmr.LaunchPower <= mwsr.LaunchPower {
		t.Errorf("SWMR launch power %v should exceed MWSR %v", swmr.LaunchPower, mwsr.LaunchPower)
	}
	// SWMR carries far more receive hardware.
	if swmr.DetectorBanks <= mwsr.DetectorBanks {
		t.Errorf("SWMR detector banks %d should exceed MWSR %d", swmr.DetectorBanks, mwsr.DetectorBanks)
	}
	// MWSR repeats the payload once per reader.
	if mwsr.Transmissions != g.Cols-1 {
		t.Errorf("MWSR transmissions = %d, want %d", mwsr.Transmissions, g.Cols-1)
	}
}

func TestDisciplineTradeoffScalesWithRowSize(t *testing.T) {
	// The latency gap between the disciplines widens with the row size
	// (MWSR serializes one transmission per reader).
	small, _ := NewGrid(2, 2, 4, 10*phy.Gigahertz)
	big, _ := NewGrid(2, 8, 4, 10*phy.Gigahertz)
	ms, ss, err := small.CompareDisciplines(64, testLaser(small))
	if err != nil {
		t.Fatal(err)
	}
	mb, sb, err := big.CompareDisciplines(64, testLaser(big))
	if err != nil {
		t.Fatal(err)
	}
	gapSmall := ms.Latency / ss.Latency
	gapBig := mb.Latency / sb.Latency
	if gapBig <= gapSmall {
		t.Errorf("latency gap should widen with row size: %v -> %v", gapSmall, gapBig)
	}
}

func TestSingleColumnRowDegenerates(t *testing.T) {
	g, _ := NewGrid(4, 1, 4, 10*phy.Gigahertz)
	mwsr, err := g.RowBroadcast(32, MWSR, testLaser(g))
	if err != nil {
		t.Fatal(err)
	}
	if mwsr.Transmissions != 1 {
		t.Errorf("single-tile row should need one transmission, got %d", mwsr.Transmissions)
	}
}
