package interconnect

import (
	"fmt"

	"pixel/internal/photonics"
)

// The paper's related work (Section VI-A) notes that photonic NoCs use
// either Multiple-Write-Single-Read or Single-Write-Multiple-Read
// channels, trading energy against performance. PIXEL's OMACs use MWSR
// (Section III-A); this file models both so the trade-off is
// quantifiable on PIXEL's own fabric.
//
//   - MWSR: every tile owns a transmit band; one home tile reads the
//     whole waveguide. Cheap receive (one detector bank), but a tile's
//     message is seen by one reader — broadcasts need one transmission
//     per reader's waveguide.
//   - SWMR: one tile owns the waveguide and every other tile carries a
//     full receive bank. A single transmission reaches all readers
//     (true broadcast), at the cost of (tiles-1) detector banks per
//     waveguide and the optical power to feed them all (a 1:N split).

// Discipline selects the channel-sharing scheme.
type Discipline int

const (
	// MWSR is multiple-write single-read (the PIXEL default).
	MWSR Discipline = iota
	// SWMR is single-write multiple-read.
	SWMR
)

// String implements fmt.Stringer.
func (d Discipline) String() string {
	if d == SWMR {
		return "SWMR"
	}
	return "MWSR"
}

// BroadcastCost is the price of delivering one neuron vector to every
// tile of a row.
type BroadcastCost struct {
	Discipline Discipline
	// Transmissions is how many times the payload is modulated.
	Transmissions int
	// DetectorBanks is how many receiver banks the row carries.
	DetectorBanks int
	// Energy is the total broadcast energy [J].
	Energy float64
	// Latency is the time until every tile holds the payload [s].
	Latency float64
	// LaunchPower is the required per-wavelength laser power [W].
	LaunchPower float64
}

// RowBroadcast prices a `bits`-bit broadcast to every tile of a row
// under the given discipline.
func (g *Grid) RowBroadcast(bits int, d Discipline, laser photonics.Laser) (BroadcastCost, error) {
	if bits <= 0 {
		return BroadcastCost{}, fmt.Errorf("interconnect: broadcast needs a positive payload")
	}
	if err := g.Validate(); err != nil {
		return BroadcastCost{}, err
	}
	readers := g.Cols - 1
	if readers < 1 {
		readers = 1
	}
	switch d {
	case MWSR:
		// Each reader owns its home waveguide: the writer modulates
		// the payload once per reader.
		per := g.BroadcastEnergy(bits, laser)
		return BroadcastCost{
			Discipline:    MWSR,
			Transmissions: readers,
			DetectorBanks: g.Cols, // one home bank per tile
			Energy:        float64(readers) * per,
			// The transmissions are serialized on the writer's
			// modulator bank.
			Latency:     float64(readers)*g.SerializationLatency(bits) + g.FlightTime(),
			LaunchPower: g.RequiredLaunchPower(),
		}, nil
	case SWMR:
		// One transmission; the optical power splits 1:readers, so the
		// launch power scales with the reader count, and every tile
		// detects.
		launch := g.RequiredLaunchPower() * float64(readers)
		mod := g.MRR.SwitchEnergyPerBit * float64(bits)
		duration := g.SerializationLatency(bits)
		laserE := launch * float64(g.Lanes) * duration / laser.WallPlugEfficiency
		detect := float64(readers) * g.PD.EnergyPerBit * float64(bits)
		return BroadcastCost{
			Discipline:    SWMR,
			Transmissions: 1,
			DetectorBanks: g.Cols * readers, // every tile listens to every writer
			Energy:        mod + laserE + detect,
			Latency:       duration + g.FlightTime(),
			LaunchPower:   launch,
		}, nil
	default:
		return BroadcastCost{}, fmt.Errorf("interconnect: unknown discipline %d", int(d))
	}
}

// CompareDisciplines prices the same broadcast both ways — the
// energy-vs-latency trade the paper's related work describes.
func (g *Grid) CompareDisciplines(bits int, laser photonics.Laser) (mwsr, swmr BroadcastCost, err error) {
	mwsr, err = g.RowBroadcast(bits, MWSR, laser)
	if err != nil {
		return
	}
	swmr, err = g.RowBroadcast(bits, SWMR, laser)
	return
}
