package trace

import (
	"math"
	"strings"
	"testing"

	"pixel/internal/optsim"
	"pixel/internal/photonics"
	"pixel/internal/phy"
)

const slot = 100 * phy.Picosecond

func TestWriteSignalCSV(t *testing.T) {
	s := optsim.NewOOK([]int{1, 0, 1}, 1e-3, slot, 0)
	var sb strings.Builder
	if err := WriteSignalCSV(&sb, s); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + 3 slots
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "slot,time_s,power_w") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "1,") || !strings.Contains(lines[2], ",0,") {
		t.Errorf("dark slot row = %q", lines[2])
	}
	if err := WriteSignalCSV(&sb, nil); err == nil {
		t.Error("nil signal should error")
	}
}

func TestWriteBusCSV(t *testing.T) {
	b := optsim.NewBus(2, 2, slot)
	b[1] = optsim.NewOOK([]int{1, 1}, 2e-3, slot, 1)
	var sb strings.Builder
	if err := WriteBusCSV(&sb, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ch0_power_w,ch1_power_w") {
		t.Errorf("bus header wrong: %q", out)
	}
	if !strings.Contains(out, "0,0,0.002") {
		t.Errorf("bus rows wrong:\n%s", out)
	}
	if err := WriteBusCSV(&sb, nil); err == nil {
		t.Error("empty bus should error")
	}
}

func TestSummarizeCleanSignal(t *testing.T) {
	s := optsim.NewOOK([]int{1, 0, 1, 1}, 1e-3, slot, 0)
	sum := Summarize(s, 1e-6)
	if sum.Slots != 4 || sum.LitSlots != 3 {
		t.Errorf("slots = %d/%d", sum.LitSlots, sum.Slots)
	}
	if math.Abs(sum.PeakPower-1e-3) > 1e-12 {
		t.Errorf("peak = %v", sum.PeakPower)
	}
	if math.Abs(sum.MeanPower-0.75e-3) > 1e-12 {
		t.Errorf("mean = %v", sum.MeanPower)
	}
	if !math.IsInf(sum.ExtinctionDB, 1) {
		t.Errorf("clean OOK extinction should be +Inf, got %v", sum.ExtinctionDB)
	}
}

func TestSummarizeLeakageExtinction(t *testing.T) {
	// A filtered signal with 20 dB leakage on the dark slots.
	s := optsim.NewOOK([]int{1, 1, 1}, 1e-3, slot, 0)
	leak := optsim.NewOOK([]int{0, 1, 0}, 1e-3, slot, 0)
	leak.Scale(complex(photonics.FieldLoss(20), 0))
	// Construct: slot 1 carries only leakage power.
	s.Amps[1] = leak.Amps[1]
	sum := Summarize(s, 1e-4)
	if sum.LitSlots != 2 {
		t.Fatalf("lit slots = %d", sum.LitSlots)
	}
	if math.Abs(sum.ExtinctionDB-20) > 0.1 {
		t.Errorf("extinction = %v dB, want ~20", sum.ExtinctionDB)
	}
}

func TestSummarizeDarkSignal(t *testing.T) {
	s := optsim.NewDark(4, slot, 0)
	sum := Summarize(s, 1e-6)
	if sum.LitSlots != 0 || sum.MinLitPower != 0 || sum.ExtinctionDB != 0 {
		t.Errorf("dark summary = %+v", sum)
	}
	// Negative threshold is clamped.
	if got := Summarize(s, -1); got.LitSlots != 0 {
		t.Error("negative threshold should clamp to zero")
	}
}
