// Package trace exports optical pulse trains as CSV waveforms and
// computes signal-quality summaries (peak/mean power, extinction
// ratio). It exists for debugging datapaths — dump a signal at any
// point of a circuit and inspect it slot by slot.
package trace

import (
	"fmt"
	"io"
	"math"

	"pixel/internal/optsim"
)

// WriteSignalCSV writes one row per slot: index, time [s], power [W],
// and the complex field components.
func WriteSignalCSV(w io.Writer, s *optsim.Signal) error {
	if s == nil {
		return fmt.Errorf("trace: nil signal")
	}
	if _, err := fmt.Fprintln(w, "slot,time_s,power_w,field_re,field_im"); err != nil {
		return err
	}
	for i := range s.Amps {
		a := s.Amps[i]
		_, err := fmt.Fprintf(w, "%d,%.6g,%.6g,%.6g,%.6g\n",
			i, float64(i)*s.Period+s.Skew, s.Power(i), real(a), imag(a))
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteBusCSV writes one row per slot with a power column per channel.
func WriteBusCSV(w io.Writer, b optsim.Bus) error {
	if len(b) == 0 {
		return fmt.Errorf("trace: empty bus")
	}
	slots := 0
	for _, s := range b {
		if s != nil && s.Slots() > slots {
			slots = s.Slots()
		}
	}
	if _, err := fmt.Fprint(w, "slot"); err != nil {
		return err
	}
	for c := range b {
		if _, err := fmt.Fprintf(w, ",ch%d_power_w", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < slots; i++ {
		if _, err := fmt.Fprintf(w, "%d", i); err != nil {
			return err
		}
		for _, s := range b {
			p := 0.0
			if s != nil {
				p = s.Power(i)
			}
			if _, err := fmt.Fprintf(w, ",%.6g", p); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// Summary holds signal-quality statistics.
type Summary struct {
	Slots     int
	LitSlots  int
	PeakPower float64
	MeanPower float64
	// MinLitPower is the weakest non-dark slot (the worst "one").
	MinLitPower float64
	// ExtinctionDB is 10*log10(MinLitPower / MaxDarkPower); +Inf when
	// every dark slot is perfectly dark, 0 when nothing is lit.
	ExtinctionDB float64
}

// Summarize computes the statistics, classifying slots as lit when
// their power exceeds the threshold [W].
func Summarize(s *optsim.Signal, threshold float64) Summary {
	if threshold < 0 {
		threshold = 0
	}
	out := Summary{Slots: s.Slots(), MinLitPower: math.Inf(1)}
	maxDark := 0.0
	var total float64
	for i := 0; i < s.Slots(); i++ {
		p := s.Power(i)
		total += p
		if p > out.PeakPower {
			out.PeakPower = p
		}
		if p > threshold {
			out.LitSlots++
			if p < out.MinLitPower {
				out.MinLitPower = p
			}
		} else if p > maxDark {
			maxDark = p
		}
	}
	if out.Slots > 0 {
		out.MeanPower = total / float64(out.Slots)
	}
	switch {
	case out.LitSlots == 0:
		out.MinLitPower = 0
		out.ExtinctionDB = 0
	case maxDark == 0:
		out.ExtinctionDB = math.Inf(1)
	default:
		out.ExtinctionDB = 10 * math.Log10(out.MinLitPower/maxDark)
	}
	return out
}
