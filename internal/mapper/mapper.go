// Package mapper schedules CNN layers onto the PIXEL tile grid of
// Figure 3: it tiles a layer's E^2*M*C matrix-vector products over the
// OMAC tiles, sizes the filter-weight register files, accounts the
// weight-preload traffic, and produces a per-layer schedule (rounds,
// utilization, makespan) that the top-level simulator and the
// weight-streaming ablation consume.
//
// Mapping discipline (following Section III-C): filters are distributed
// across tiles (one output-neuron lane per OMAC), input-channel groups
// map to lanes, and output pixels stream through time. Synapse weights
// are pre-loaded into each tile's register file before the layer runs;
// the preload can travel electrically or photonically (the paper's
// "photonics could also be utilized to send the weight information").
package mapper

import (
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/elec"
	"pixel/internal/interconnect"
	"pixel/internal/phy"
)

// Assignment describes how one layer occupies the grid.
type Assignment struct {
	Layer string
	// FilterTiles is how many tiles hold distinct filters (M spread
	// over the grid); PixelWaves is how many output-pixel waves stream
	// through; ChannelGroups is how many lane-sized input-channel
	// groups each MVM needs.
	FilterTiles   int
	PixelWaves    int
	ChannelGroups int
	// Utilization is the fraction of tile-rounds doing useful work.
	Utilization float64
	// Rounds is the total number of grid rounds for the layer.
	Rounds float64
	// WeightBits is the synapse volume pre-loaded into register files.
	WeightBits float64
}

// Schedule is the whole-network mapping.
type Schedule struct {
	Network     string
	Grid        *interconnect.Grid
	Config      arch.Config
	Assignments []Assignment
	// MakespanS is the end-to-end latency with sequential preloads
	// (each layer's weights load after the previous layer finishes).
	MakespanS float64
	// PipelinedMakespanS is the latency with double-buffered register
	// files: layer i+1's weights stream in while layer i computes, so
	// each stage takes max(compute_i, preload_{i+1}).
	PipelinedMakespanS float64
	// ComputeS and PreloadS split the sequential makespan.
	ComputeS float64
	PreloadS float64
	// PreloadJ is the weight-movement energy (transport-dependent,
	// identical for both buffering disciplines).
	PreloadJ float64

	// computeTimes and preloadTimes hold the per-layer splits.
	computeTimes []float64
	preloadTimes []float64
}

// WeightTransport selects how synapse weights reach the tiles.
type WeightTransport int

const (
	// ElectricalPreload moves weights over on-chip wires.
	ElectricalPreload WeightTransport = iota
	// PhotonicPreload streams weights over the WDM fabric (the
	// paper's suggested extension).
	PhotonicPreload
)

// String implements fmt.Stringer.
func (w WeightTransport) String() string {
	if w == PhotonicPreload {
		return "photonic"
	}
	return "electrical"
}

// Dataflow selects how synapse weights meet the compute.
type Dataflow int

const (
	// WeightStationary pre-loads each layer's unique weights into the
	// tile register files once (the paper's design: "the synapses are
	// pre-loaded into the OMAC").
	WeightStationary Dataflow = iota
	// WeightStreaming sends every weight at the moment of use, with no
	// register files: traffic scales with the MAC count instead of the
	// parameter count. Quantifies what the paper's pre-loading choice
	// saves (everything, for convolutions with high weight reuse;
	// nothing, for FC layers whose weights are used once).
	WeightStreaming
)

// String implements fmt.Stringer.
func (d Dataflow) String() string {
	if d == WeightStreaming {
		return "streaming"
	}
	return "stationary"
}

// Options configures the mapper.
type Options struct {
	Transport WeightTransport
	Dataflow  Dataflow
	// WeightBits is the stored precision per synapse; zero means the
	// configuration's native precision.
	WeightBits int
}

// MapLayer assigns one layer to the grid under the configuration.
func MapLayer(l cnn.Layer, g *interconnect.Grid, cfg arch.Config, opt Options) (Assignment, error) {
	if err := l.Validate(); err != nil {
		return Assignment{}, err
	}
	if err := g.Validate(); err != nil {
		return Assignment{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Assignment{}, err
	}
	wBits := opt.WeightBits
	if wBits == 0 {
		wBits = arch.NativePrecision
	}

	tiles := g.Tiles()
	counts := l.Counts(cnn.ModePaper)

	var filters, pixels, weights float64
	switch l.Type {
	case cnn.Conv:
		e := float64(l.OutputSize())
		filters = float64(l.M)
		pixels = e * e
		weights = float64(l.M*l.R*l.R*l.C) * float64(wBits)
	case cnn.FC:
		filters = float64(l.Out)
		pixels = 1
		weights = float64(l.In*l.Out) * float64(wBits)
	default:
		return Assignment{}, fmt.Errorf("mapper: unsupported layer type %v", l.Type)
	}
	if opt.Dataflow == WeightStreaming {
		// Every MAC fetches its weight: traffic follows the op count.
		weights = counts.Mul * float64(wBits)
	}

	filterTiles := int(filters)
	if filterTiles > tiles {
		filterTiles = tiles
	}
	filterWaves := phy.CeilDiv(int(filters), tiles)
	channelGroups := 1
	if l.Type == cnn.Conv {
		channelGroups = phy.CeilDiv(l.C, cfg.Lanes)
	} else {
		channelGroups = phy.CeilDiv(l.In, cfg.Lanes)
	}

	// Rounds: the grid executes tiles x lanes x operands-per-burst MAC
	// operations per round (each tile is one OMAC with `lanes`
	// wavelengths).
	workOps := counts.Mul
	gridOps := float64(tiles) * float64(cfg.Lanes) * cfg.OperandsPerBurst()
	rounds := workOps / gridOps
	if rounds < 1 {
		rounds = 1
	}
	// Utilization: last filter wave may leave tiles idle.
	util := filters / (float64(filterWaves) * float64(tiles))
	if util > 1 {
		util = 1
	}

	return Assignment{
		Layer:         l.Name,
		FilterTiles:   filterTiles,
		PixelWaves:    int(pixels) * filterWaves,
		ChannelGroups: channelGroups,
		Utilization:   util,
		Rounds:        rounds,
		WeightBits:    weights,
	}, nil
}

// preloadCost returns the time [s] and energy [J] to move `bits` of
// weights to the tiles and write them into the per-tile register
// files.
func preloadCost(bits float64, g *interconnect.Grid, cfg arch.Config, opt Options) (float64, float64) {
	// Weight-stationary bits land in register-file cells; streamed
	// weights skip storage.
	var rfWrite float64
	if opt.Dataflow == WeightStationary {
		rfRef, err := elec.NewSRAM(1, 8)
		if err != nil {
			panic(err) // static organization, cannot fail
		}
		rfWrite = bits * rfRef.WriteEnergyPerBit
	}

	switch opt.Transport {
	case PhotonicPreload:
		// The WDM fabric streams weights at lanes x line-rate across
		// all rows in parallel; energy is modulation + detection.
		rowBits := bits / float64(g.Rows)
		t := rowBits / (float64(g.Lanes) * g.BitRate)
		perBit := cfg.Cal.ModulatorPerBit + cfg.Cal.PDPerBit +
			cfg.Cal.OELaunchPower/(g.BitRate*cfg.Cal.LaserWallPlug)
		return t, bits*perBit + rfWrite
	default:
		// Electrical: a shared bus at the electrical clock, one word
		// per cycle per row.
		words := bits / float64(arch.NativePrecision)
		t := words / float64(g.Rows) * cfg.Cal.ElectricalCycle
		return t, bits*cfg.Cal.ElinkPerBit + rfWrite
	}
}

// MapNetwork schedules every layer and totals the makespan.
func MapNetwork(net cnn.Network, g *interconnect.Grid, cfg arch.Config, opt Options) (*Schedule, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Network: net.Name, Grid: g, Config: cfg}
	roundTime := arch.RoundTime(cfg)
	for _, l := range net.Layers {
		a, err := MapLayer(l, g, cfg, opt)
		if err != nil {
			return nil, fmt.Errorf("mapper: %s: %w", l.Name, err)
		}
		s.Assignments = append(s.Assignments, a)
		compute := a.Rounds * roundTime
		t, e := preloadCost(a.WeightBits, g, cfg, opt)
		s.computeTimes = append(s.computeTimes, compute)
		s.preloadTimes = append(s.preloadTimes, t)
		s.ComputeS += compute
		s.PreloadS += t
		s.PreloadJ += e
	}
	s.MakespanS = s.ComputeS + s.PreloadS
	s.PipelinedMakespanS = pipelinedMakespan(s.computeTimes, s.preloadTimes)
	return s, nil
}

// pipelinedMakespan overlaps layer i+1's preload with layer i's compute
// (double-buffered register files): the first preload is exposed, then
// every stage takes the longer of its compute and the next preload.
func pipelinedMakespan(compute, preload []float64) float64 {
	if len(compute) == 0 {
		return 0
	}
	total := preload[0]
	for i := range compute {
		stage := compute[i]
		if i+1 < len(preload) && preload[i+1] > stage {
			stage = preload[i+1]
		}
		total += stage
	}
	return total
}

// MeanUtilization returns the round-weighted mean tile utilization.
func (s *Schedule) MeanUtilization() float64 {
	var num, den float64
	for _, a := range s.Assignments {
		num += a.Utilization * a.Rounds
		den += a.Rounds
	}
	if den == 0 {
		return 0
	}
	return num / den
}
