package mapper

import (
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/interconnect"
	"pixel/internal/phy"
)

func BenchmarkMapNetworkVGG16(b *testing.B) {
	g, err := interconnect.NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.MustConfig(arch.OO, 4, 8)
	net := cnn.VGG16()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MapNetwork(net, g, cfg, Options{Transport: PhotonicPreload}); err != nil {
			b.Fatal(err)
		}
	}
}
