package mapper

import (
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/interconnect"
	"pixel/internal/phy"
)

func grid4(t *testing.T) *interconnect.Grid {
	t.Helper()
	g, err := interconnect.NewGrid(4, 4, 4, 10*phy.Gigahertz)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMapLayerConvBasics(t *testing.T) {
	g := grid4(t)
	cfg := arch.MustConfig(arch.OO, 4, 8)
	// VGG16 Conv1: 64 filters, 3 channels, E=224.
	l := cnn.VGG16().Layers[0]
	a, err := MapLayer(l, g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.FilterTiles != 16 {
		t.Errorf("FilterTiles = %d, want 16 (64 filters on 16 tiles)", a.FilterTiles)
	}
	if a.ChannelGroups != 1 {
		t.Errorf("ChannelGroups = %d, want 1 (3 channels fit in 4 lanes)", a.ChannelGroups)
	}
	if a.Utilization != 1 {
		t.Errorf("Utilization = %v, want 1 (64 filters tile evenly over 16)", a.Utilization)
	}
	// Weight volume: 64 filters * 9 * 3 channels * 8 bits.
	if want := float64(64 * 9 * 3 * 8); a.WeightBits != want {
		t.Errorf("WeightBits = %v, want %v", a.WeightBits, want)
	}
	if a.Rounds < 1 {
		t.Error("rounds must be at least 1")
	}
}

func TestMapLayerUnevenFiltersLowerUtilization(t *testing.T) {
	g := grid4(t) // 16 tiles
	cfg := arch.MustConfig(arch.OE, 4, 8)
	// 17 filters on 16 tiles: second wave runs 1/16 full.
	l := cnn.Layer{Name: "odd", Type: cnn.Conv, H: 8, W: 8, C: 4, Pad: 1, R: 3, U: 1, M: 17}
	a, err := MapLayer(l, g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 17.0 / 32.0
	if a.Utilization != want {
		t.Errorf("Utilization = %v, want %v", a.Utilization, want)
	}
}

func TestMapLayerFC(t *testing.T) {
	g := grid4(t)
	cfg := arch.MustConfig(arch.EE, 4, 8)
	l := cnn.Layer{Name: "fc", Type: cnn.FC, In: 400, Out: 120}
	a, err := MapLayer(l, g, cfg, Options{WeightBits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.ChannelGroups != 100 {
		t.Errorf("ChannelGroups = %d, want 100 (400 inputs / 4 lanes)", a.ChannelGroups)
	}
	if want := float64(400 * 120 * 4); a.WeightBits != want {
		t.Errorf("WeightBits = %v, want %v", a.WeightBits, want)
	}
}

func TestMapLayerValidation(t *testing.T) {
	g := grid4(t)
	cfg := arch.MustConfig(arch.EE, 4, 8)
	if _, err := MapLayer(cnn.Layer{Name: "bad", Type: cnn.Conv}, g, cfg, Options{}); err == nil {
		t.Error("invalid layer should error")
	}
	badCfg := cfg
	badCfg.Lanes = 0
	if _, err := MapLayer(cnn.VGG16().Layers[0], g, badCfg, Options{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestMapNetworkTotals(t *testing.T) {
	g := grid4(t)
	cfg := arch.MustConfig(arch.OO, 4, 8)
	s, err := MapNetwork(cnn.LeNet(), g, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Assignments) != len(cnn.LeNet().Layers) {
		t.Errorf("assignments = %d", len(s.Assignments))
	}
	if s.MakespanS != s.ComputeS+s.PreloadS {
		t.Error("makespan must be compute + preload")
	}
	if s.ComputeS <= 0 || s.PreloadS <= 0 || s.PreloadJ <= 0 {
		t.Errorf("degenerate schedule %+v", s)
	}
	u := s.MeanUtilization()
	if u <= 0 || u > 1 {
		t.Errorf("mean utilization = %v", u)
	}
}

func TestPipelinedMakespanBounds(t *testing.T) {
	g := grid4(t)
	cfg := arch.MustConfig(arch.OO, 4, 8)
	for _, net := range []string{"LeNet", "VGG16", "AlexNet"} {
		n, err := cnn.ByName(net)
		if err != nil {
			t.Fatal(err)
		}
		s, err := MapNetwork(n, g, cfg, Options{Transport: ElectricalPreload})
		if err != nil {
			t.Fatal(err)
		}
		if s.PipelinedMakespanS > s.MakespanS {
			t.Errorf("%s: pipelined (%v) must not exceed sequential (%v)", net, s.PipelinedMakespanS, s.MakespanS)
		}
		if s.PipelinedMakespanS < s.ComputeS {
			t.Errorf("%s: pipelined (%v) cannot beat pure compute (%v)", net, s.PipelinedMakespanS, s.ComputeS)
		}
	}
}

func TestWeightStationaryBeatsStreamingForConv(t *testing.T) {
	// Convolutions reuse each weight E^2 times; pre-loading (the
	// paper's choice) moves orders of magnitude fewer bits than
	// streaming per use.
	g := grid4(t)
	cfg := arch.MustConfig(arch.OO, 4, 8)
	l := cnn.VGG16().Layers[2] // Conv3: high reuse
	st, err := MapLayer(l, g, cfg, Options{Dataflow: WeightStationary})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := MapLayer(l, g, cfg, Options{Dataflow: WeightStreaming})
	if err != nil {
		t.Fatal(err)
	}
	if sm.WeightBits < 1000*st.WeightBits {
		t.Errorf("streaming traffic %.3g should dwarf stationary %.3g for conv layers",
			sm.WeightBits, st.WeightBits)
	}
	// FC layers use each weight once: under the paper's own FC
	// accounting (N_mul = In^2) the streamed traffic is within a small
	// factor of the stored volume.
	fcLayer := cnn.Layer{Name: "fc", Type: cnn.FC, In: 1024, Out: 1024}
	fcSt, err := MapLayer(fcLayer, g, cfg, Options{Dataflow: WeightStationary})
	if err != nil {
		t.Fatal(err)
	}
	fcSm, err := MapLayer(fcLayer, g, cfg, Options{Dataflow: WeightStreaming})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := fcSm.WeightBits / fcSt.WeightBits; ratio > 2 {
		t.Errorf("FC streaming/stationary = %.2f, want ~1 (no reuse)", ratio)
	}
	if WeightStationary.String() != "stationary" || WeightStreaming.String() != "streaming" {
		t.Error("dataflow strings wrong")
	}
}

func TestStreamingSkipsRFWriteEnergy(t *testing.T) {
	g := grid4(t)
	cfg := arch.MustConfig(arch.OO, 4, 8)
	st, err := MapNetwork(cnn.LeNet(), g, cfg, Options{Dataflow: WeightStationary})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := MapNetwork(cnn.LeNet(), g, cfg, Options{Dataflow: WeightStreaming})
	if err != nil {
		t.Fatal(err)
	}
	// Streaming moves far more bits, so despite skipping RF writes its
	// preload energy is higher for a conv-heavy model.
	if sm.PreloadJ <= st.PreloadJ {
		t.Errorf("streaming preload energy %.3g should exceed stationary %.3g", sm.PreloadJ, st.PreloadJ)
	}
}

func TestPipelinedMakespanFormula(t *testing.T) {
	// Hand-checked: compute (10, 2), preload (3, 8).
	// total = p0 + max(c0, p1) + c1 = 3 + max(10,8) + 2 = 15.
	got := pipelinedMakespan([]float64{10, 2}, []float64{3, 8})
	if got != 15 {
		t.Errorf("pipelinedMakespan = %v, want 15", got)
	}
	// Preload-bound stage: compute (1, 1), preload (3, 8) ->
	// 3 + max(1,8) + 1 = 12.
	if got := pipelinedMakespan([]float64{1, 1}, []float64{3, 8}); got != 12 {
		t.Errorf("preload-bound = %v, want 12", got)
	}
	if got := pipelinedMakespan(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestMapNetworkRejectsInvalid(t *testing.T) {
	g := grid4(t)
	cfg := arch.MustConfig(arch.EE, 4, 8)
	if _, err := MapNetwork(cnn.Network{}, g, cfg, Options{}); err == nil {
		t.Error("invalid network should error")
	}
}

func TestPhotonicPreloadFasterThanElectrical(t *testing.T) {
	// The paper's suggested extension: streaming weights photonically
	// uses lanes x 10 GHz instead of a word-per-cycle bus.
	g := grid4(t)
	cfg := arch.MustConfig(arch.OO, 4, 8)
	elec, err := MapNetwork(cnn.VGG16(), g, cfg, Options{Transport: ElectricalPreload})
	if err != nil {
		t.Fatal(err)
	}
	phot, err := MapNetwork(cnn.VGG16(), g, cfg, Options{Transport: PhotonicPreload})
	if err != nil {
		t.Fatal(err)
	}
	if phot.PreloadS >= elec.PreloadS {
		t.Errorf("photonic preload (%v) should beat electrical (%v)", phot.PreloadS, elec.PreloadS)
	}
	// Compute time is transport-independent.
	if phot.ComputeS != elec.ComputeS {
		t.Error("compute time must not depend on weight transport")
	}
	if ElectricalPreload.String() != "electrical" || PhotonicPreload.String() != "photonic" {
		t.Error("transport strings wrong")
	}
}

func TestBiggerGridFewerRounds(t *testing.T) {
	small := grid4(t)
	big, err := interconnect.NewGrid(8, 8, 4, 10*phy.Gigahertz)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.MustConfig(arch.OO, 4, 8)
	l := cnn.VGG16().Layers[2]
	a1, err := MapLayer(l, small, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := MapLayer(l, big, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a2.Rounds >= a1.Rounds {
		t.Errorf("4x the tiles should cut rounds: %v vs %v", a2.Rounds, a1.Rounds)
	}
}
