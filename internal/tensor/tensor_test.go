package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d", x.Len())
	}
	x.Set(1, 2, 3, 42)
	if x.At(1, 2, 3) != 42 {
		t.Error("Set/At round trip failed")
	}
	// Out-of-bounds reads are zero (implicit padding).
	if x.At(-1, 0, 0) != 0 || x.At(0, 3, 0) != 0 || x.At(0, 0, 4) != 0 {
		t.Error("out-of-bounds reads must be zero")
	}
}

func TestSetPanicsOutOfBounds(t *testing.T) {
	x := New(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	x.Set(2, 0, 0, 1)
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 1, 1)
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := New(3, 3, 1)
	for i := range in.Data {
		in.Data[i] = int64(i + 1)
	}
	k := NewKernel(1, 1, 1)
	k.Set(0, 0, 0, 0, 1)
	out, err := Conv2D(in, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("identity conv mismatch at %d", i)
		}
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 3x3 input, 2x2 kernel of ones, stride 1, no padding -> 2x2 sums.
	in := New(3, 3, 1)
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	copy(in.Data, vals)
	k := NewKernel(1, 2, 1)
	for ky := 0; ky < 2; ky++ {
		for kx := 0; kx < 2; kx++ {
			k.Set(0, ky, kx, 0, 1)
		}
	}
	out, err := Conv2D(in, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{12, 16, 24, 28}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
}

func TestConv2DPaddingAndStride(t *testing.T) {
	in := New(4, 4, 1)
	for i := range in.Data {
		in.Data[i] = 1
	}
	k := NewKernel(1, 3, 1)
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			k.Set(0, ky, kx, 0, 1)
		}
	}
	// Same padding, stride 1: output 4x4; corners see 4 ones.
	out, err := Conv2D(in, k, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 4 || out.W != 4 {
		t.Fatalf("output %dx%d, want 4x4", out.H, out.W)
	}
	if out.At(0, 0, 0) != 4 || out.At(1, 1, 0) != 9 || out.At(0, 1, 0) != 6 {
		t.Errorf("padded conv values wrong: %d %d %d", out.At(0, 0, 0), out.At(1, 1, 0), out.At(0, 1, 0))
	}
	// Stride 2: output 2x2.
	out2, err := Conv2D(in, k, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out2.H != 2 || out2.W != 2 {
		t.Errorf("strided output %dx%d, want 2x2", out2.H, out2.W)
	}
}

func TestConv2DMultiChannelMultiFilter(t *testing.T) {
	in := New(2, 2, 2)
	for i := range in.Data {
		in.Data[i] = int64(i)
	}
	k := NewKernel(2, 1, 2) // two 1x1 filters over 2 channels
	k.Set(0, 0, 0, 0, 1)
	k.Set(0, 0, 0, 1, 1) // filter 0 sums channels
	k.Set(1, 0, 0, 0, 2)
	k.Set(1, 0, 0, 1, 0) // filter 1 doubles channel 0
	out, err := Conv2D(in, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.C != 2 || out.H != 2 || out.W != 2 {
		t.Fatalf("bad output shape %dx%dx%d", out.H, out.W, out.C)
	}
	if out.At(0, 0, 0) != 0+1 || out.At(0, 0, 1) != 0 {
		t.Error("filter outputs wrong at (0,0)")
	}
	if out.At(1, 1, 0) != 6+7 || out.At(1, 1, 1) != 12 {
		t.Error("filter outputs wrong at (1,1)")
	}
}

func TestConv2DErrors(t *testing.T) {
	in := New(4, 4, 3)
	k := NewKernel(1, 3, 2) // channel mismatch
	if _, err := Conv2D(in, k, 1, 0); err == nil {
		t.Error("channel mismatch should error")
	}
	k2 := NewKernel(1, 5, 3) // kernel too large
	if _, err := Conv2D(in, k2, 1, 0); err == nil {
		t.Error("oversized kernel should error")
	}
	k3 := NewKernel(1, 3, 3)
	if _, err := Conv2D(in, k3, 0, 0); err == nil {
		t.Error("zero stride should error")
	}
}

func TestMaxPool2D(t *testing.T) {
	in := New(4, 4, 1)
	for i := range in.Data {
		in.Data[i] = int64(i)
	}
	out, err := MaxPool2D(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 7, 13, 15}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("pool[%d] = %d, want %d", i, out.Data[i], w)
		}
	}
	if _, err := MaxPool2D(in, 3); err == nil {
		t.Error("non-tiling window should error")
	}
}

func TestFullyConnected(t *testing.T) {
	in := NewVector([]int64{1, 2, 3})
	w := []int64{
		1, 0, 0, // picks x0
		0, 0, 2, // doubles x2
	}
	out, err := FullyConnected(in, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0, 0) != 1 || out.At(0, 0, 1) != 6 {
		t.Errorf("FC = %v", out.Data)
	}
	if _, err := FullyConnected(in, w, 3); err == nil {
		t.Error("weight size mismatch should error")
	}
}

func TestReLUClampRescaleArgMax(t *testing.T) {
	x := NewVector([]int64{-5, 3, 200, 7})
	ReLU(x)
	if x.Data[0] != 0 || x.Data[1] != 3 {
		t.Errorf("ReLU = %v", x.Data)
	}
	Clamp(x, 100)
	if x.Data[2] != 100 {
		t.Errorf("Clamp = %v", x.Data)
	}
	Rescale(x, 3)
	if x.Data[1] != 1 || x.Data[2] != 33 {
		t.Errorf("Rescale = %v", x.Data)
	}
	if got := ArgMax(x); got != 2 {
		t.Errorf("ArgMax = %d", got)
	}
}

func TestRescalePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Rescale(NewVector([]int64{1}), 0)
}

func TestConv2DLinearityProperty(t *testing.T) {
	// conv(a+b, k) == conv(a, k) + conv(b, k): convolution is linear.
	f := func(seedA, seedB [9]int8, kw [4]int8) bool {
		a := New(3, 3, 1)
		b := New(3, 3, 1)
		for i := 0; i < 9; i++ {
			a.Data[i] = int64(seedA[i])
			b.Data[i] = int64(seedB[i])
		}
		sum := New(3, 3, 1)
		for i := range sum.Data {
			sum.Data[i] = a.Data[i] + b.Data[i]
		}
		k := NewKernel(1, 2, 1)
		for i := 0; i < 4; i++ {
			k.Data[i] = int64(kw[i])
		}
		ca, err1 := Conv2D(a, k, 1, 0)
		cb, err2 := Conv2D(b, k, 1, 0)
		cs, err3 := Conv2D(sum, k, 1, 0)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		for i := range cs.Data {
			if cs.Data[i] != ca.Data[i]+cb.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFlattenSharesStorage(t *testing.T) {
	x := New(2, 2, 2)
	f := x.Flatten()
	f.Data[3] = 9
	if x.Data[3] != 9 {
		t.Error("Flatten must share storage")
	}
	if f.C != 8 || f.H != 1 || f.W != 1 {
		t.Errorf("flatten shape %dx%dx%d", f.H, f.W, f.C)
	}
}
