package tensor

import "fmt"

// PatchMatrix is the im2col lowering of a convolution input: one row
// per output position (row-major over (oy, ox)), each row the RxRxC
// window values in the same (ky, kx, c) order Conv2D and the qnn conv
// layers consume them. Lowering once and reusing the rows across every
// filter replaces the 6-deep scalar loop of a direct convolution with
// M dense dot products per row — the transformation that makes both
// the photonic PE mapping and our simulation of it tractable.
type PatchMatrix struct {
	// EH, EW are the output spatial dimensions; Rows == EH*EW.
	EH, EW int
	// Rows and Cols describe the matrix: Cols == R*R*C.
	Rows, Cols int
	// Data is the row-major backing store.
	Data []int64
}

// Row returns row i (the window of output position i) as a slice into
// the backing store.
func (p *PatchMatrix) Row(i int) []int64 {
	return p.Data[i*p.Cols : (i+1)*p.Cols : (i+1)*p.Cols]
}

// convShape computes and validates the output spatial extent of a
// convolution of a kernel of side r over in with the given stride and
// zero padding.
func convShape(in *Tensor, r, stride, pad int) (eh, ew int, err error) {
	if stride < 1 || pad < 0 {
		return 0, 0, fmt.Errorf("tensor: invalid stride %d / pad %d", stride, pad)
	}
	if r < 1 {
		return 0, 0, fmt.Errorf("tensor: invalid kernel size %d", r)
	}
	eh = (in.H+2*pad-r)/stride + 1
	ew = (in.W+2*pad-r)/stride + 1
	if eh < 1 || ew < 1 {
		return 0, 0, fmt.Errorf("tensor: kernel %d too large for input %dx%d with pad %d", r, in.H, in.W, pad)
	}
	return eh, ew, nil
}

// Lower computes the im2col patch matrix of in for a kernel of side r
// with the given stride and zero padding. Interior windows (no
// out-of-bounds rows or columns) take a fast path that copies R
// contiguous R*C spans per window instead of bounds-checking every
// element through At; boundary windows fall back to the padded
// per-element gather.
func Lower(in *Tensor, r, stride, pad int) (*PatchMatrix, error) {
	p := new(PatchMatrix)
	if err := LowerInto(p, in, r, stride, pad); err != nil {
		return nil, err
	}
	return p, nil
}

// LowerInto is Lower writing into p, reusing p's backing store when it
// is already large enough — the pooled-scratch form batched inference
// leans on to keep the per-image hot path allocation-free.
func LowerInto(p *PatchMatrix, in *Tensor, r, stride, pad int) error {
	eh, ew, err := convShape(in, r, stride, pad)
	if err != nil {
		return err
	}
	cols := r * r * in.C
	need := eh * ew * cols
	if cap(p.Data) < need {
		p.Data = make([]int64, need)
	}
	p.EH, p.EW, p.Rows, p.Cols = eh, ew, eh*ew, cols
	p.Data = p.Data[:need]
	span := r * in.C // one kernel row of a window is contiguous in HWC
	for oy := 0; oy < eh; oy++ {
		y0 := oy*stride - pad
		interiorY := y0 >= 0 && y0+r <= in.H
		for ox := 0; ox < ew; ox++ {
			x0 := ox*stride - pad
			row := p.Row(oy*ew + ox)
			if interiorY && x0 >= 0 && x0+r <= in.W {
				// Interior fast path: each (ky, *, *) span is one copy.
				for ky := 0; ky < r; ky++ {
					base := ((y0+ky)*in.W + x0) * in.C
					copy(row[ky*span:(ky+1)*span], in.Data[base:base+span])
				}
				continue
			}
			i := 0
			for ky := 0; ky < r; ky++ {
				for kx := 0; kx < r; kx++ {
					for c := 0; c < in.C; c++ {
						row[i] = in.At(y0+ky, x0+kx, c)
						i++
					}
				}
			}
		}
	}
	return nil
}
