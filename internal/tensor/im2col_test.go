package tensor

import (
	"math/rand"
	"testing"
)

// randTensor fills a tensor with small pseudo-random values (including
// negatives, so lowering is exercised beyond the quantized range).
func randTensor(rng *rand.Rand, h, w, c int) *Tensor {
	t := New(h, w, c)
	for i := range t.Data {
		t.Data[i] = rng.Int63n(31) - 8
	}
	return t
}

func randKernel(rng *rand.Rand, m, r, c int) *Kernel {
	k := NewKernel(m, r, c)
	for i := range k.Data {
		k.Data[i] = rng.Int63n(31) - 8
	}
	return k
}

// TestLowerMatchesAtGather checks every patch row against the padded
// per-element At gather, covering both the interior fast path and the
// boundary fallback.
func TestLowerMatchesAtGather(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct{ h, w, c, r, stride, pad int }{
		{6, 6, 1, 3, 1, 0},
		{6, 6, 1, 3, 1, 2}, // all-boundary rows
		{7, 5, 3, 3, 2, 1},
		{4, 4, 2, 4, 1, 0}, // single window, whole input
		{9, 9, 2, 1, 3, 0}, // 1x1 kernel
		{5, 5, 1, 3, 1, 4}, // pad larger than kernel
	}
	for _, tc := range cases {
		in := randTensor(rng, tc.h, tc.w, tc.c)
		p, err := Lower(in, tc.r, tc.stride, tc.pad)
		if err != nil {
			t.Fatalf("Lower(%+v): %v", tc, err)
		}
		if p.Rows != p.EH*p.EW || p.Cols != tc.r*tc.r*tc.c {
			t.Fatalf("Lower(%+v): shape %dx%d (EH %d EW %d)", tc, p.Rows, p.Cols, p.EH, p.EW)
		}
		for oy := 0; oy < p.EH; oy++ {
			for ox := 0; ox < p.EW; ox++ {
				row := p.Row(oy*p.EW + ox)
				i := 0
				for ky := 0; ky < tc.r; ky++ {
					for kx := 0; kx < tc.r; kx++ {
						for c := 0; c < tc.c; c++ {
							want := in.At(oy*tc.stride+ky-tc.pad, ox*tc.stride+kx-tc.pad, c)
							if row[i] != want {
								t.Fatalf("Lower(%+v): row(%d,%d)[%d] = %d, want %d", tc, oy, ox, i, row[i], want)
							}
							i++
						}
					}
				}
			}
		}
	}
}

func TestLowerRejectsBadShapes(t *testing.T) {
	in := New(4, 4, 1)
	if _, err := Lower(in, 3, 0, 0); err == nil {
		t.Error("stride 0 should error")
	}
	if _, err := Lower(in, 3, 1, -1); err == nil {
		t.Error("negative pad should error")
	}
	if _, err := Lower(in, 0, 1, 0); err == nil {
		t.Error("kernel 0 should error")
	}
	if _, err := Lower(in, 5, 1, 0); err == nil {
		t.Error("kernel larger than padded input should error")
	}
}

// TestConv2DMatchesReference is the randomized property test: the
// lowered Conv2D must be bit-identical to the direct-loop oracle over
// random shapes, strides and paddings.
func TestConv2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		h := 1 + rng.Intn(9)
		w := 1 + rng.Intn(9)
		c := 1 + rng.Intn(4)
		r := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		stride := 1 + rng.Intn(3)
		pad := rng.Intn(3)
		if h+2*pad < r || w+2*pad < r {
			continue
		}
		in := randTensor(rng, h, w, c)
		k := randKernel(rng, m, r, c)
		want, err := Conv2DReference(in, k, stride, pad)
		if err != nil {
			t.Fatalf("reference conv h%d w%d c%d r%d m%d s%d p%d: %v", h, w, c, r, m, stride, pad, err)
		}
		got, err := Conv2D(in, k, stride, pad)
		if err != nil {
			t.Fatalf("lowered conv h%d w%d c%d r%d m%d s%d p%d: %v", h, w, c, r, m, stride, pad, err)
		}
		if got.H != want.H || got.W != want.W || got.C != want.C {
			t.Fatalf("shape %dx%dx%d, want %dx%dx%d", got.H, got.W, got.C, want.H, want.W, want.C)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("conv h%d w%d c%d r%d m%d s%d p%d: out[%d] = %d, want %d",
					h, w, c, r, m, stride, pad, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestConv2DErrorParity(t *testing.T) {
	in := New(4, 4, 2)
	k := NewKernel(1, 3, 1) // channel mismatch
	if _, err := Conv2D(in, k, 1, 0); err == nil {
		t.Error("channel mismatch should error")
	}
	if _, err := Conv2DReference(in, k, 1, 0); err == nil {
		t.Error("reference channel mismatch should error")
	}
	k2 := NewKernel(1, 5, 2)
	if _, err := Conv2D(in, k2, 1, 0); err == nil {
		t.Error("oversized kernel should error")
	}
}
