package tensor

import "fmt"

// Arena recycles tensor storage across pipeline stages and batches.
// Inference pipelines churn through short-lived activation tensors —
// one per image per layer — whose shapes repeat exactly from batch to
// batch; an Arena keeps the retired ones and hands their backing
// arrays back out, so a steady-state pass allocates nothing for
// activations.
//
// Get returns a tensor with UNSPECIFIED contents (possibly stale data
// from a previous use): callers must fully overwrite it. Put hands a
// tensor back; the caller must not touch it afterwards, and must not
// Put the same tensor twice without an intervening Get.
//
// An Arena is NOT safe for concurrent use. The batched pipeline calls
// Get/Put only from its serial coordination path (outputs are
// pre-acquired before work fans across the worker pool), and callers
// that share arenas across request handlers pool whole Arenas rather
// than locking one.
type Arena struct {
	free []*Tensor
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Get returns a tensor of the given shape, reusing a recycled tensor's
// backing array when a large enough one is free and allocating
// otherwise. The element contents are unspecified.
func (a *Arena) Get(h, w, c int) *Tensor {
	if h < 1 || w < 1 || c < 1 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%d", h, w, c))
	}
	n := h * w * c
	for i := len(a.free) - 1; i >= 0; i-- {
		t := a.free[i]
		if cap(t.Data) >= n {
			last := len(a.free) - 1
			a.free[i] = a.free[last]
			a.free[last] = nil
			a.free = a.free[:last]
			t.H, t.W, t.C = h, w, c
			t.Data = t.Data[:n]
			return t
		}
	}
	return &Tensor{H: h, W: w, C: c, Data: make([]int64, n)}
}

// Put returns tensors to the arena for reuse; nil entries are ignored.
// The tensors (and any aliases of their Data) must no longer be in use.
func (a *Arena) Put(ts ...*Tensor) {
	for _, t := range ts {
		if t != nil && cap(t.Data) > 0 {
			a.free = append(a.free, t)
		}
	}
}

// Free reports how many tensors are currently recycled — arena
// introspection for tests and steady-state assertions.
func (a *Arena) Free() int { return len(a.free) }
