package tensor

import "testing"

func TestArenaRecyclesStorage(t *testing.T) {
	a := NewArena()
	t1 := a.Get(2, 3, 4)
	if t1.H != 2 || t1.W != 3 || t1.C != 4 || len(t1.Data) != 24 {
		t.Fatalf("Get shape: %dx%dx%d len %d", t1.H, t1.W, t1.C, len(t1.Data))
	}
	data := &t1.Data[0]
	a.Put(t1)
	if a.Free() != 1 {
		t.Fatalf("free = %d, want 1", a.Free())
	}
	// A smaller request must reuse the retired backing array.
	t2 := a.Get(4, 3, 2)
	if &t2.Data[0] != data {
		t.Fatal("smaller Get did not reuse recycled storage")
	}
	if a.Free() != 0 {
		t.Fatalf("free = %d, want 0", a.Free())
	}
	// A larger request cannot.
	a.Put(t2)
	t3 := a.Get(5, 5, 5)
	if len(t3.Data) != 125 {
		t.Fatalf("len = %d", len(t3.Data))
	}
	if a.Free() != 1 {
		t.Fatalf("free = %d, want 1 (small tensor still recycled)", a.Free())
	}
}

func TestArenaGetContentsOverwritable(t *testing.T) {
	// Stale contents are allowed by contract; the shape must still be
	// exact so every element is addressable and a full overwrite covers
	// the whole logical tensor.
	a := NewArena()
	t1 := a.Get(1, 1, 8)
	for i := range t1.Data {
		t1.Data[i] = int64(i + 1)
	}
	a.Put(t1)
	t2 := a.Get(2, 2, 2)
	if t2.Len() != 8 || len(t2.Data) != 8 {
		t.Fatalf("len = %d/%d, want 8", t2.Len(), len(t2.Data))
	}
	for i := range t2.Data {
		t2.Data[i] = 0
	}
	if t2.At(1, 1, 1) != 0 {
		t.Fatal("overwrite did not reach every element")
	}
}

func TestArenaPutIgnoresNil(t *testing.T) {
	a := NewArena()
	a.Put(nil, nil)
	if a.Free() != 0 {
		t.Fatalf("free = %d, want 0", a.Free())
	}
	a.Put(nil, New(1, 1, 1), nil)
	if a.Free() != 1 {
		t.Fatalf("free = %d, want 1", a.Free())
	}
}

func TestArenaZeroAllocSteadyState(t *testing.T) {
	a := NewArena()
	a.Put(New(4, 4, 3))
	avg := testing.AllocsPerRun(100, func() {
		t1 := a.Get(4, 4, 3)
		a.Put(t1)
	})
	if avg != 0 {
		t.Fatalf("steady-state Get/Put allocates %.1f per cycle, want 0", avg)
	}
}
