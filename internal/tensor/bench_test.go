package tensor

import (
	"math/rand"
	"testing"
)

// benchConvCase is a LeNet-conv2-sized problem: 14x14x6 input, 16
// 5x5x6 filters, stride 1, no padding.
func benchConvCase() (*Tensor, *Kernel) {
	rng := rand.New(rand.NewSource(42))
	in := randTensor(rng, 14, 14, 6)
	k := randKernel(rng, 16, 5, 6)
	return in, k
}

func BenchmarkConv2D(b *testing.B) {
	in, k := benchConvCase()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2D(in, k, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConv2DReference(b *testing.B) {
	in, k := benchConvCase()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Conv2DReference(in, k, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}
