// Package tensor provides a minimal integer tensor with reference
// implementations of the CNN operators (2-D convolution, max pooling,
// fully-connected) used to validate end-to-end inference through the
// OMAC datapaths. Values are int64; quantized networks in the examples
// use unsigned activations/weights that fit the OMAC operand widths.
package tensor

import "fmt"

// Tensor is a dense 3-D tensor in HWC layout (height, width, channels).
// A fully-connected vector is a 1x1xC tensor.
type Tensor struct {
	H, W, C int
	Data    []int64
}

// New returns a zero tensor of the given shape.
func New(h, w, c int) *Tensor {
	if h < 1 || w < 1 || c < 1 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%dx%d", h, w, c))
	}
	return &Tensor{H: h, W: w, C: c, Data: make([]int64, h*w*c)}
}

// NewVector returns a 1x1xN tensor wrapping the given values.
func NewVector(vals []int64) *Tensor {
	t := New(1, 1, len(vals))
	copy(t.Data, vals)
	return t
}

// idx returns the flat index of (y, x, c).
func (t *Tensor) idx(y, x, c int) int {
	return (y*t.W+x)*t.C + c
}

// At returns the value at (y, x, c); out-of-bounds reads return 0,
// implementing implicit zero padding.
func (t *Tensor) At(y, x, c int) int64 {
	if y < 0 || y >= t.H || x < 0 || x >= t.W || c < 0 || c >= t.C {
		return 0
	}
	return t.Data[t.idx(y, x, c)]
}

// Set stores v at (y, x, c) and panics on out-of-bounds writes.
func (t *Tensor) Set(y, x, c int, v int64) {
	if y < 0 || y >= t.H || x < 0 || x >= t.W || c < 0 || c >= t.C {
		panic(fmt.Sprintf("tensor: Set(%d,%d,%d) out of bounds %dx%dx%d", y, x, c, t.H, t.W, t.C))
	}
	t.Data[t.idx(y, x, c)] = v
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Flatten returns the data as a vector tensor (shares storage).
func (t *Tensor) Flatten() *Tensor {
	return &Tensor{H: 1, W: 1, C: len(t.Data), Data: t.Data}
}

// Kernel is a convolution filter bank: M filters of RxRxC weights.
type Kernel struct {
	M, R, C int
	Data    []int64 // [m][ky][kx][c]
}

// NewKernel returns a zero filter bank.
func NewKernel(m, r, c int) *Kernel {
	if m < 1 || r < 1 || c < 1 {
		panic(fmt.Sprintf("tensor: invalid kernel %dx%dx%d", m, r, c))
	}
	return &Kernel{M: m, R: r, C: c, Data: make([]int64, m*r*r*c)}
}

// At returns the weight of filter m at (ky, kx, c).
func (k *Kernel) At(m, ky, kx, c int) int64 {
	return k.Data[((m*k.R+ky)*k.R+kx)*k.C+c]
}

// Set stores a weight.
func (k *Kernel) Set(m, ky, kx, c int, v int64) {
	k.Data[((m*k.R+ky)*k.R+kx)*k.C+c] = v
}

// Filter returns filter m's weights as a flat slice in (ky, kx, c)
// order — the same order a PatchMatrix row presents the window values,
// so out[m] of a convolution is the plain dot product of the two.
// The slice aliases the kernel's backing store.
func (k *Kernel) Filter(m int) []int64 {
	n := k.R * k.R * k.C
	return k.Data[m*n : (m+1)*n : (m+1)*n]
}

// Conv2D computes a standard 2-D convolution with the given stride and
// zero padding, returning an ExMxE output (E per the usual formula).
// The input is lowered to an im2col patch matrix once and every filter
// reduces to dense dot products over its rows; the result is
// bit-identical to Conv2DReference.
func Conv2D(in *Tensor, k *Kernel, stride, pad int) (*Tensor, error) {
	if in.C != k.C {
		return nil, fmt.Errorf("tensor: input channels %d != kernel channels %d", in.C, k.C)
	}
	p, err := Lower(in, k.R, stride, pad)
	if err != nil {
		return nil, err
	}
	out := New(p.EH, p.EW, k.M)
	for m := 0; m < k.M; m++ {
		w := k.Filter(m)
		for i := 0; i < p.Rows; i++ {
			row := p.Row(i)
			var acc int64
			for j, v := range row {
				acc += v * w[j]
			}
			out.Data[i*k.M+m] = acc
		}
	}
	return out, nil
}

// Conv2DReference is the direct 6-deep loop convolution the lowered
// Conv2D replaced, kept as the oracle the im2col path (and the
// parallel qnn conv layer built on it) is property-tested against.
func Conv2DReference(in *Tensor, k *Kernel, stride, pad int) (*Tensor, error) {
	if in.C != k.C {
		return nil, fmt.Errorf("tensor: input channels %d != kernel channels %d", in.C, k.C)
	}
	if stride < 1 || pad < 0 {
		return nil, fmt.Errorf("tensor: invalid stride %d / pad %d", stride, pad)
	}
	eh := (in.H+2*pad-k.R)/stride + 1
	ew := (in.W+2*pad-k.R)/stride + 1
	if eh < 1 || ew < 1 {
		return nil, fmt.Errorf("tensor: kernel %d too large for input %dx%d with pad %d", k.R, in.H, in.W, pad)
	}
	out := New(eh, ew, k.M)
	for oy := 0; oy < eh; oy++ {
		for ox := 0; ox < ew; ox++ {
			for m := 0; m < k.M; m++ {
				var acc int64
				for ky := 0; ky < k.R; ky++ {
					for kx := 0; kx < k.R; kx++ {
						for c := 0; c < in.C; c++ {
							acc += in.At(oy*stride+ky-pad, ox*stride+kx-pad, c) * k.At(m, ky, kx, c)
						}
					}
				}
				out.Set(oy, ox, m, acc)
			}
		}
	}
	return out, nil
}

// MaxPool2D computes max pooling with a square window and equal stride.
func MaxPool2D(in *Tensor, window int) (*Tensor, error) {
	if window < 1 || in.H%window != 0 || in.W%window != 0 {
		return nil, fmt.Errorf("tensor: pool window %d does not tile %dx%d", window, in.H, in.W)
	}
	out := New(in.H/window, in.W/window, in.C)
	MaxPoolInto(out, in, window)
	return out, nil
}

// MaxPoolInto max-pools in into out, which must already have shape
// (in.H/window, in.W/window, in.C) with the window tiling in exactly —
// the allocation-free core of MaxPool2D, for callers that recycle
// output tensors. Every out element is overwritten.
func MaxPoolInto(out, in *Tensor, window int) {
	if window < 1 || in.H%window != 0 || in.W%window != 0 ||
		out.H != in.H/window || out.W != in.W/window || out.C != in.C {
		panic(fmt.Sprintf("tensor: MaxPoolInto window %d: %dx%dx%d -> %dx%dx%d",
			window, in.H, in.W, in.C, out.H, out.W, out.C))
	}
	for oy := 0; oy < out.H; oy++ {
		for ox := 0; ox < out.W; ox++ {
			for c := 0; c < in.C; c++ {
				best := in.At(oy*window, ox*window, c)
				for ky := 0; ky < window; ky++ {
					for kx := 0; kx < window; kx++ {
						if v := in.At(oy*window+ky, ox*window+kx, c); v > best {
							best = v
						}
					}
				}
				out.Set(oy, ox, c, best)
			}
		}
	}
}

// FullyConnected computes out[o] = sum_i in[i] * w[o][i] for a weight
// matrix given in row-major [out][in] order.
func FullyConnected(in *Tensor, weights []int64, outDim int) (*Tensor, error) {
	n := in.Len()
	if len(weights) != n*outDim {
		return nil, fmt.Errorf("tensor: weight matrix %d != %d x %d", len(weights), outDim, n)
	}
	out := New(1, 1, outDim)
	for o := 0; o < outDim; o++ {
		var acc int64
		row := weights[o*n : (o+1)*n]
		for i, v := range in.Data {
			acc += v * row[i]
		}
		out.Set(0, 0, o, acc)
	}
	return out, nil
}

// ReLU applies max(0, x) in place and returns the tensor.
func ReLU(t *Tensor) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
	return t
}

// Rescale divides every element by the given positive factor (arithmetic
// shift-style requantization between layers) and returns the tensor.
func Rescale(t *Tensor, factor int64) *Tensor {
	if factor <= 0 {
		panic("tensor: rescale factor must be positive")
	}
	for i := range t.Data {
		t.Data[i] /= factor
	}
	return t
}

// Clamp limits every element to [0, max] in place and returns the
// tensor; used to keep quantized activations within operand range.
func Clamp(t *Tensor, max int64) *Tensor {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		} else if v > max {
			t.Data[i] = max
		}
	}
	return t
}

// ArgMax returns the index of the largest element (first on ties).
func ArgMax(t *Tensor) int {
	best := 0
	for i, v := range t.Data {
		if v > t.Data[best] {
			best = i
		}
	}
	return best
}
