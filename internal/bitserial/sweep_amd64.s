//go:build amd64 && !purego

#include "textflag.h"

// AVX2 kernels for the batched filter sweep. Both functions compute,
// for lane blocks of four 64-bit words w in [0, words&^3) and four
// filters k:
//
//	acc_k[w] = sum_i cols[i*words + w] * fl_k[i]   (mod 2^64)
//
// with the four accumulator vectors register-resident across the whole
// element loop and stored once per block. Lanes in [words&^3, words)
// are left untouched for the scalar tail in batch.go. VPADDQ wraps mod
// 2^64 exactly like Go uint64 addition, and per-lane sums mod 2^64 are
// order-independent, so the results are bit-identical to the scalar
// sweep.
//
// Register plan (both kernels):
//	SI = cols base    CX = words      DX = n
//	R8..R11  = fl1..fl4 bases
//	R12..R15 = acc1..acc4 bases
//	BX = block base lane   AX = element index   DI = &cols[i*words+BX]
//	Y0..Y3 = accumulators for fl1..fl4

// func sweepQuadAVX2(cols *uint64, words, n int, fl1, fl2, fl3, fl4, acc1, acc2, acc3, acc4 *uint64)
//
// Unpacked lane store: column values fit 32 bits (operands are at most
// 24 bits wide), so one VPMULUDQ (32x32->64) is the exact product.
TEXT ·sweepQuadAVX2(SB), NOSPLIT, $0-88
	MOVQ cols+0(FP), SI
	MOVQ words+8(FP), CX
	MOVQ n+16(FP), DX
	MOVQ fl1+24(FP), R8
	MOVQ fl2+32(FP), R9
	MOVQ fl3+40(FP), R10
	MOVQ fl4+48(FP), R11
	MOVQ acc1+56(FP), R12
	MOVQ acc2+64(FP), R13
	MOVQ acc3+72(FP), R14
	MOVQ acc4+80(FP), R15

	XORQ BX, BX

quadblock:
	LEAQ 4(BX), DI
	CMPQ DI, CX
	JGT  quaddone

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	LEAQ (SI)(BX*8), DI
	XORQ AX, AX

quadelem:
	CMPQ AX, DX
	JGE  quadstore

	VPBROADCASTQ (R8)(AX*8), Y4
	VPBROADCASTQ (R9)(AX*8), Y5
	VPBROADCASTQ (R10)(AX*8), Y6
	VPBROADCASTQ (R11)(AX*8), Y7
	VMOVDQU      (DI), Y8
	VPMULUDQ     Y8, Y4, Y4
	VPMULUDQ     Y8, Y5, Y5
	VPMULUDQ     Y8, Y6, Y6
	VPMULUDQ     Y8, Y7, Y7
	VPADDQ       Y4, Y0, Y0
	VPADDQ       Y5, Y1, Y1
	VPADDQ       Y6, Y2, Y2
	VPADDQ       Y7, Y3, Y3

	LEAQ (DI)(CX*8), DI
	INCQ AX
	JMP  quadelem

quadstore:
	VMOVDQU Y0, (R12)(BX*8)
	VMOVDQU Y1, (R13)(BX*8)
	VMOVDQU Y2, (R14)(BX*8)
	VMOVDQU Y3, (R15)(BX*8)
	ADDQ    $4, BX
	JMP     quadblock

quaddone:
	VZEROUPPER
	RET

// func sweepQuadPackedAVX2(cols *uint64, words, n int, fl1, fl2, fl3, fl4, acc1, acc2, acc3, acc4 *uint64)
//
// Packed lane store: each column word carries two independent 32-bit
// lane halves, so the kernel forms cv*wt = lo(cv)*wt + (hi(cv)*wt)<<32
// (exact mod 2^64 for wt < 2^32), matching the scalar sweep's full
// 64-bit multiply of the packed word.
TEXT ·sweepQuadPackedAVX2(SB), NOSPLIT, $0-88
	MOVQ cols+0(FP), SI
	MOVQ words+8(FP), CX
	MOVQ n+16(FP), DX
	MOVQ fl1+24(FP), R8
	MOVQ fl2+32(FP), R9
	MOVQ fl3+40(FP), R10
	MOVQ fl4+48(FP), R11
	MOVQ acc1+56(FP), R12
	MOVQ acc2+64(FP), R13
	MOVQ acc3+72(FP), R14
	MOVQ acc4+80(FP), R15

	XORQ BX, BX

packblock:
	LEAQ 4(BX), DI
	CMPQ DI, CX
	JGT  packdone

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	LEAQ (SI)(BX*8), DI
	XORQ AX, AX

packelem:
	CMPQ AX, DX
	JGE  packstore

	VMOVDQU (DI), Y8
	VPSRLQ  $32, Y8, Y9

	VPBROADCASTQ (R8)(AX*8), Y4
	VPMULUDQ     Y8, Y4, Y6
	VPMULUDQ     Y9, Y4, Y7
	VPSLLQ       $32, Y7, Y7
	VPADDQ       Y6, Y0, Y0
	VPADDQ       Y7, Y0, Y0

	VPBROADCASTQ (R9)(AX*8), Y4
	VPMULUDQ     Y8, Y4, Y6
	VPMULUDQ     Y9, Y4, Y7
	VPSLLQ       $32, Y7, Y7
	VPADDQ       Y6, Y1, Y1
	VPADDQ       Y7, Y1, Y1

	VPBROADCASTQ (R10)(AX*8), Y4
	VPMULUDQ     Y8, Y4, Y6
	VPMULUDQ     Y9, Y4, Y7
	VPSLLQ       $32, Y7, Y7
	VPADDQ       Y6, Y2, Y2
	VPADDQ       Y7, Y2, Y2

	VPBROADCASTQ (R11)(AX*8), Y4
	VPMULUDQ     Y8, Y4, Y6
	VPMULUDQ     Y9, Y4, Y7
	VPSLLQ       $32, Y7, Y7
	VPADDQ       Y6, Y3, Y3
	VPADDQ       Y7, Y3, Y3

	LEAQ (DI)(CX*8), DI
	INCQ AX
	JMP  packelem

packstore:
	VMOVDQU Y0, (R12)(BX*8)
	VMOVDQU Y1, (R13)(BX*8)
	VMOVDQU Y2, (R14)(BX*8)
	VMOVDQU Y3, (R15)(BX*8)
	ADDQ    $4, BX
	JMP     packblock

packdone:
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
