//go:build amd64 && !purego

package bitserial

// AVX2 filter-sweep kernels (sweep_amd64.s). Both walk the column
// store lane-blocked — four 64-bit lanes per YMM register, the
// accumulators register-resident across the whole element loop — and
// store the finished sums once per block, so accumulator traffic drops
// from one load+store per MAC to one store per block. The scalar sweep
// in batch.go finishes any words%4 tail lanes.
//
// sweepQuadAVX2 multiplies with a single VPMULUDQ per (filter, block):
// unpacked column values fit 32 bits (operands are at most 24 bits),
// so the 32x32->64 product is the exact 64-bit product. The packed
// variant splits each column word into its two 32-bit lane halves and
// recombines lo*wt + (hi*wt)<<32 mod 2^64, which equals the scalar
// code's full 64-bit cv*wt for any wt < 2^32. VPADDQ wraps mod 2^64
// exactly like Go's uint64 addition, and per-lane sums mod 2^64 are
// order-independent, so both kernels are bit-identical to the scalar
// sweep (TestSweepVectorMatchesScalar pins them together).

//go:noescape
func sweepQuadAVX2(cols *uint64, words, n int, fl1, fl2, fl3, fl4, acc1, acc2, acc3, acc4 *uint64)

//go:noescape
func sweepQuadPackedAVX2(cols *uint64, words, n int, fl1, fl2, fl3, fl4, acc1, acc2, acc3, acc4 *uint64)

// cpuid executes CPUID with the given leaf and subleaf.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0 (the OS-enabled SIMD
// state mask).
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether both the CPU and the OS support AVX2: the
// CPUID feature bit plus OSXSAVE and YMM/XMM state enabled in XCR0
// (an OS that does not save YMM registers across context switches
// would corrupt the kernels' accumulators).
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	if ecx1&osxsave == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&0x6 != 0x6 {
		return false // OS does not preserve XMM+YMM state
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

func init() {
	if hasAVX2() {
		sweepQuadVec = sweepQuadAVX2
		sweepQuadPackedVec = sweepQuadPackedAVX2
		useVec = true
	}
}
