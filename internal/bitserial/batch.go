package bitserial

import (
	"fmt"
	"sync"
)

// groupLanes is how many windows one transposed group carries in
// lockstep — the software dual of the paper's wavelength parallelism
// (one dot product per λ lane per pulse). 64 lanes keep a group's
// column store inside L2 for LeNet-sized windows.
const groupLanes = 64

// BatchedStripes executes many Stripes dot products per call,
// word-parallel across the batch. Windows are transposed into a
// lane-major column store — for each element position, one contiguous
// run of the batch's values at that position — so each synapse weight
// of the shared filter updates every lane of the group in one
// multiply-accumulate sweep over a hot cache line, with operand
// validation hoisted into the transpose instead of paid per
// (window, filter) pair. The lanes accumulate in full 64-bit words and
// are reduced by the accumulator mask once per dot product; because
// reduction mod 2^accWidth is a ring homomorphism from arithmetic mod
// 2^64, that single reduction lands on exactly the value the
// sequential engine's per-element wrap produces — the same
// collapse-the-bit-serial-loop move NewFastEngine makes against the
// gate-level engine, one level up. Results (values and Stats) are
// bit-identical to running each window through FastEngine
// sequentially; TestBatchedStripesEquivalence pins the two together.
//
// The per-call setup (transpose and validation) is hoisted once per
// 64-window group and reused across every filter of a DotProductsMulti
// call — the hoisted-setup idiom that makes batched conv layers pay it
// once per group rather than once per (window, filter) pair.
//
// A BatchedStripes is safe for concurrent use: per-call scratch comes
// from an internal pool.
type BatchedStripes struct {
	fe      *FastEngine
	scratch sync.Pool // *batchScratch
}

// batchScratch is the pooled per-call working set: the lane-major
// column store and four filter accumulator rows (filters are swept
// four at a time so each column load feeds four independent
// accumulate chains).
type batchScratch struct {
	cols []uint64 // [element*groupLanes + lane]
	acc  []uint64 // [lane], filter f
	acc2 []uint64 // [lane], filter f+1
	acc3 []uint64 // [lane], filter f+2
	acc4 []uint64 // [lane], filter f+3
}

// NewBatchedStripes returns a batched engine with the same operand and
// accumulator geometry as NewFastEngine(bits, terms).
func NewBatchedStripes(bits, terms int) (*BatchedStripes, error) {
	fe, err := NewFastEngine(bits, terms)
	if err != nil {
		return nil, err
	}
	return &BatchedStripes{fe: fe}, nil
}

// Bits returns the operand precision.
func (b *BatchedStripes) Bits() int { return b.fe.bits }

// AccumulatorWidth returns the accumulator width in bits.
func (b *BatchedStripes) AccumulatorWidth() int { return b.fe.accWidth }

// Fast returns the equivalent sequential engine — the ground truth the
// batched path is verified against, and the fallback for single calls.
func (b *BatchedStripes) Fast() *FastEngine { return b.fe }

// DotProduct computes one dot product through the sequential engine —
// the qnn.Dotter form for unbatched callers.
func (b *BatchedStripes) DotProduct(neurons, synapses []uint64) (uint64, error) {
	v, _, err := b.fe.DotProduct(neurons, synapses)
	return v, err
}

// DotProducts writes the dot product of each window against weights
// into out — the qnn.BatchDotter form of DotBatch.
func (b *BatchedStripes) DotProducts(windows [][]uint64, weights []uint64, out []uint64) error {
	_, err := b.DotBatch(windows, weights, out)
	return err
}

// DotProductsMulti evaluates every filter against every window,
// writing outs[f][w] — the qnn.MultiDotter form of FilterBatch. The
// window transpose is shared across all filters.
func (b *BatchedStripes) DotProductsMulti(windows [][]uint64, filters [][]uint64, outs [][]uint64) error {
	_, err := b.FilterBatch(windows, filters, outs)
	return err
}

// DotBatch computes windows[w] · weights for every w, writing out[w].
// The value and the accumulated Stats are bit-identical to len(windows)
// sequential FastEngine.DotProduct calls.
func (b *BatchedStripes) DotBatch(windows [][]uint64, weights []uint64, out []uint64) (Stats, error) {
	if len(out) != len(windows) {
		return Stats{}, fmt.Errorf("bitserial: out length %d != %d windows", len(out), len(windows))
	}
	return b.FilterBatch(windows, [][]uint64{weights}, [][]uint64{out})
}

// FilterBatch computes outs[f][w] = windows[w] · filters[f] for every
// (filter, window) pair, transposing each 64-window group into bit
// planes once and sweeping all filters over it. Values and Stats are
// bit-identical to the sequential per-pair FastEngine calls.
func (b *BatchedStripes) FilterBatch(windows [][]uint64, filters [][]uint64, outs [][]uint64) (Stats, error) {
	if len(outs) != len(filters) {
		return Stats{}, fmt.Errorf("bitserial: %d output rows != %d filters", len(outs), len(filters))
	}
	for f, o := range outs {
		if len(o) != len(windows) {
			return Stats{}, fmt.Errorf("bitserial: output row %d length %d != %d windows", f, len(o), len(windows))
		}
	}
	n := -1
	for w, win := range windows {
		if n < 0 {
			n = len(win)
		} else if len(win) != n {
			return Stats{}, fmt.Errorf("bitserial: window %d length %d != %d", w, len(win), n)
		}
	}
	for f, filter := range filters {
		if n >= 0 && len(filter) != n {
			return Stats{}, fmt.Errorf("bitserial: vector lengths differ (%d vs %d)", n, len(filter))
		}
		for _, v := range filter {
			if err := b.fe.checkOperand("synapse", v); err != nil {
				return Stats{}, fmt.Errorf("bitserial: filter %d: %w", f, err)
			}
		}
	}
	if len(windows) == 0 || len(filters) == 0 {
		return Stats{}, nil
	}

	sc := b.getScratch(n)
	defer b.scratch.Put(sc)
	// Bit-slice two lanes per machine word when the accumulator fits a
	// 32-bit half AND the true (unwrapped) low-half sum can never carry
	// into the high half: every per-word operation then performs two
	// lane MACs. maxProd bounds one product; n*maxProd bounds the sum.
	maxProd := ((uint64(1) << b.fe.bits) - 1) * ((uint64(1) << b.fe.bits) - 1)
	packed := b.fe.accWidth <= 32 && maxProd > 0 && uint64(n) <= (1<<32-1)/maxProd
	for start := 0; start < len(windows); start += groupLanes {
		end := start + groupLanes
		if end > len(windows) {
			end = len(windows)
		}
		if err := b.group(windows[start:end], filters, outs, start, sc, packed); err != nil {
			return Stats{}, err
		}
	}

	// The closed-form work record of one FastEngine.DotProduct, times
	// every (window, filter) pair the batch stands in for.
	pairs := len(windows) * len(filters)
	st := b.fe.multiplyStats()
	st.Adds++
	return Stats{
		Cycles:  pairs * n * st.Cycles,
		BitANDs: pairs * n * st.BitANDs,
		Adds:    pairs * n * st.Adds,
		Shifts:  pairs * n * st.Shifts,
	}, nil
}

// getScratch returns pooled scratch sized for n-element windows.
func (b *BatchedStripes) getScratch(n int) *batchScratch {
	if n < 0 {
		n = 0
	}
	need := n * groupLanes
	sc, _ := b.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{
			acc:  make([]uint64, groupLanes),
			acc2: make([]uint64, groupLanes),
			acc3: make([]uint64, groupLanes),
			acc4: make([]uint64, groupLanes),
		}
	}
	if cap(sc.cols) < need {
		sc.cols = make([]uint64, need)
	}
	sc.cols = sc.cols[:need]
	return sc
}

// group runs one <=64-window group: transpose into the lane-major
// column store, then sweep every filter over it in quads, pairs and
// singles.
//
// With packed set, two lanes are bit-sliced into each machine word:
// window 2j rides the low 32 bits of word j and window 2j+1 the high
// 32, so every multiply-accumulate performs two lane MACs — the
// software dual of packing two λ channels onto one waveguide. The
// caller guarantees (a) accWidth <= 32, so each half reduces by
// accMask independently, and (b) n * maxProduct < 2^32, so the true
// low-half sum never carries into the high half; under those bounds
// v*wt distributes over the packed halves exactly and each half
// accumulates mod 2^32, which the final per-half accMask reduction
// collapses to the sequential engine's value (same ring-homomorphism
// argument as the unpacked sweep, per half).
func (b *BatchedStripes) group(group [][]uint64, filters [][]uint64, outs [][]uint64, offset int, sc *batchScratch, packed bool) error {
	n := len(group[0])
	lanes := len(group)
	words := lanes
	if packed {
		words = (lanes + 1) / 2
	}
	cols := sc.cols[:n*words]
	// Transpose: cols[i*words+w] holds the group's values at element i
	// contiguously — one word per lane unpacked, two lanes per word
	// packed (even windows assign the whole word, clearing the high
	// half; odd windows OR into the high half of the word their
	// predecessor wrote). Operand validation happens here, once per
	// window element — not per filter.
	for w, win := range group {
		word, shift := w, uint(0)
		if packed {
			word, shift = w>>1, uint(w&1)*32
		}
		for i, v := range win {
			if err := b.fe.checkOperand("neuron", v); err != nil {
				return fmt.Errorf("bitserial: window %d: %w", offset+w, err)
			}
			if shift == 0 {
				cols[i*words+word] = v
			} else {
				cols[i*words+word] |= v << 32
			}
		}
	}

	accMask := b.fe.accMask
	acc := sc.acc[:words]
	acc2 := sc.acc2[:words]
	acc3 := sc.acc3[:words]
	acc4 := sc.acc4[:words]
	writeOut := func(o, a []uint64) {
		if packed {
			unpackPacked(o, a, offset, lanes, accMask)
			return
		}
		for w, v := range a {
			o[offset+w] = v & accMask
		}
	}
	// Filters go four at a time so each column load feeds four
	// independent multiply-accumulate chains. Lanes accumulate mod
	// 2^64 and reduce by accMask once at the end; reduction mod
	// 2^accWidth is a ring homomorphism, so this equals the sequential
	// engine's per-element wrap exactly.
	f := 0
	for ; f+3 < len(filters); f += 4 {
		sweepQuad(cols, words, n, filters[f], filters[f+1], filters[f+2], filters[f+3],
			acc, acc2, acc3, acc4, packed)
		writeOut(outs[f], acc)
		writeOut(outs[f+1], acc2)
		writeOut(outs[f+2], acc3)
		writeOut(outs[f+3], acc4)
	}
	if f+1 < len(filters) {
		sweepPair(cols, words, n, filters[f], filters[f+1], acc, acc2)
		writeOut(outs[f], acc)
		writeOut(outs[f+1], acc2)
		f += 2
	}
	if f < len(filters) {
		sweepOne(cols, words, n, filters[f], acc)
		writeOut(outs[f], acc)
	}
	return nil
}

// sweepQuad computes acc_k[w] = Σ_i cols[i*words+w] * fl_k[i] mod 2^64
// for four filters at once, dispatching lanes in blocks of four to the
// AVX2 kernel when the host has one and finishing (or fully running)
// on the portable scalar sweep. Sums mod 2^64 are order-independent,
// so the vector kernel's different accumulation order is bit-identical
// to the scalar one.
func sweepQuad(cols []uint64, words, n int, fl1, fl2, fl3, fl4, acc, acc2, acc3, acc4 []uint64, packed bool) {
	lo := 0
	if useVec && words >= 4 && n > 0 {
		lo = words &^ 3
		if packed {
			sweepQuadPackedVec(&cols[0], words, n, &fl1[0], &fl2[0], &fl3[0], &fl4[0],
				&acc[0], &acc2[0], &acc3[0], &acc4[0])
		} else {
			sweepQuadVec(&cols[0], words, n, &fl1[0], &fl2[0], &fl3[0], &fl4[0],
				&acc[0], &acc2[0], &acc3[0], &acc4[0])
		}
	}
	sweepQuadGeneric(cols, words, n, lo, words, fl1, fl2, fl3, fl4, acc, acc2, acc3, acc4)
}

// sweepQuadGeneric is the portable four-filter sweep over lanes
// [lo, words) of the column store: the scalar fallback and the tail
// pass behind the four-lane-blocked vector kernel.
func sweepQuadGeneric(cols []uint64, words, n, lo, hi int, fl1, fl2, fl3, fl4, acc, acc2, acc3, acc4 []uint64) {
	a1, a2, a3, a4 := acc[lo:hi], acc2[lo:hi], acc3[lo:hi], acc4[lo:hi]
	for w := range a1 {
		a1[w] = 0
		a2[w] = 0
		a3[w] = 0
		a4[w] = 0
	}
	if len(a1) == 0 {
		return
	}
	// Elements go two at a time, so each accumulator load/store is
	// shared by eight multiplies — the sweep is memory-bound, and this
	// halves accumulator traffic per MAC.
	i := 0
	for ; i+1 < n; i += 2 {
		wtA1, wtA2, wtA3, wtA4 := fl1[i], fl2[i], fl3[i], fl4[i]
		wtB1, wtB2, wtB3, wtB4 := fl1[i+1], fl2[i+1], fl3[i+1], fl4[i+1]
		if wtA1|wtA2|wtA3|wtA4|wtB1|wtB2|wtB3|wtB4 == 0 {
			continue // zero synapses contribute nothing in any chain
		}
		colA := cols[i*words+lo : i*words+hi : i*words+hi]
		colB := cols[(i+1)*words+lo : (i+1)*words+hi : (i+1)*words+hi]
		_ = colA[len(a1)-1]
		_ = colB[len(a1)-1]
		for w := range a1 {
			ca, cb := colA[w], colB[w]
			a1[w] += ca*wtA1 + cb*wtB1
			a2[w] += ca*wtA2 + cb*wtB2
			a3[w] += ca*wtA3 + cb*wtB3
			a4[w] += ca*wtA4 + cb*wtB4
		}
	}
	for ; i < n; i++ {
		wt, wt2, wt3, wt4 := fl1[i], fl2[i], fl3[i], fl4[i]
		if wt|wt2|wt3|wt4 == 0 {
			continue
		}
		col := cols[i*words+lo : i*words+hi : i*words+hi]
		_ = col[len(a1)-1]
		for w := range a1 {
			cv := col[w]
			a1[w] += cv * wt
			a2[w] += cv * wt2
			a3[w] += cv * wt3
			a4[w] += cv * wt4
		}
	}
}

// sweepPair is the two-filter scalar sweep for a trailing filter pair.
func sweepPair(cols []uint64, words, n int, fl1, fl2, acc, acc2 []uint64) {
	a1, a2 := acc[:words], acc2[:words]
	for w := range a1 {
		a1[w] = 0
		a2[w] = 0
	}
	if len(a1) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		wt, wt2 := fl1[i], fl2[i]
		if wt == 0 && wt2 == 0 {
			continue // zero synapses contribute nothing in either chain
		}
		col := cols[i*words : i*words+words : i*words+words]
		_ = col[len(a1)-1]
		for w := range a1 {
			cv := col[w]
			a1[w] += cv * wt
			a2[w] += cv * wt2
		}
	}
}

// sweepOne is the single-filter scalar sweep for a trailing filter.
func sweepOne(cols []uint64, words, n int, fl, acc []uint64) {
	a := acc[:words]
	for w := range a {
		a[w] = 0
	}
	if len(a) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		wt := fl[i]
		if wt == 0 {
			continue
		}
		col := cols[i*words : i*words+words : i*words+words]
		_ = col[len(a)-1]
		for w := range a {
			a[w] += col[w] * wt
		}
	}
}

// unpackPacked splits each packed accumulator word back into its two
// lanes, reducing each 32-bit half by the accumulator mask.
func unpackPacked(o []uint64, acc []uint64, offset, lanes int, accMask uint64) {
	for j, a := range acc {
		o[offset+2*j] = a & 0xffffffff & accMask
		if 2*j+1 < lanes {
			o[offset+2*j+1] = (a >> 32) & accMask
		}
	}
}
