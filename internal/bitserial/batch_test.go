package bitserial

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestBatchedStripesEquivalence is the acceptance property: a
// FilterBatch over B windows and F filters equals the B*F independent
// FastEngine.DotProduct calls it stands in for — values and Stats —
// for B in {1, 3, 8, 64} and across the 64-lane group boundary.
// Windows longer than the sized term count exercise the accumulator
// wraparound on both paths.
func TestBatchedStripesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, batch := range []int{1, 3, 8, 64, 100} {
		for _, bits := range []int{1, 2, 4, 8, 12} {
			t.Run(fmt.Sprintf("B%d/bits%d", batch, bits), func(t *testing.T) {
				terms := 1 + rng.Intn(16)
				be, err := NewBatchedStripes(bits, terms)
				if err != nil {
					t.Fatal(err)
				}
				fe := be.Fast()
				mask := uint64(1)<<uint(bits) - 1
				// Up to 4x the sized term count: sums can wrap.
				n := rng.Intn(4*terms + 1)
				nFilters := 1 + rng.Intn(3)

				windows := make([][]uint64, batch)
				for w := range windows {
					win := make([]uint64, n)
					for i := range win {
						win[i] = rng.Uint64() & mask
					}
					windows[w] = win
				}
				filters := make([][]uint64, nFilters)
				for f := range filters {
					fl := make([]uint64, n)
					for i := range fl {
						if rng.Intn(3) == 0 {
							continue // keep real zero weights in play
						}
						fl[i] = rng.Uint64() & mask
					}
					filters[f] = fl
				}
				outs := make([][]uint64, nFilters)
				for f := range outs {
					outs[f] = make([]uint64, batch)
				}

				got, err := be.FilterBatch(windows, filters, outs)
				if err != nil {
					t.Fatal(err)
				}
				var want Stats
				for f, filter := range filters {
					for w, win := range windows {
						v, st, err := fe.DotProduct(win, filter)
						if err != nil {
							t.Fatal(err)
						}
						want.add(st)
						if outs[f][w] != v {
							t.Fatalf("outs[%d][%d] = %d, want %d", f, w, outs[f][w], v)
						}
					}
				}
				if got != want {
					t.Fatalf("stats = %+v, want %+v", got, want)
				}
			})
		}
	}
}

// TestDotBatchMatchesSequential covers the single-filter entry points
// (DotBatch and the qnn-shaped DotProducts wrapper).
func TestDotBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	be, err := NewBatchedStripes(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	windows := make([][]uint64, 17)
	for w := range windows {
		win := make([]uint64, 32)
		for i := range win {
			win[i] = rng.Uint64() & 15
		}
		windows[w] = win
	}
	weights := make([]uint64, 32)
	for i := range weights {
		weights[i] = rng.Uint64() & 15
	}
	out := make([]uint64, len(windows))
	st, err := be.DotBatch(windows, weights, out)
	if err != nil {
		t.Fatal(err)
	}
	out2 := make([]uint64, len(windows))
	if err := be.DotProducts(windows, weights, out2); err != nil {
		t.Fatal(err)
	}
	var want Stats
	for w, win := range windows {
		v, vs, err := be.Fast().DotProduct(win, weights)
		if err != nil {
			t.Fatal(err)
		}
		want.add(vs)
		if out[w] != v || out2[w] != v {
			t.Fatalf("window %d: batch %d / wrapper %d, want %d", w, out[w], out2[w], v)
		}
	}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

// TestBatchedStripesErrors proves the batched path rejects exactly what
// the sequential path rejects: over-range operands, ragged windows and
// mis-sized outputs.
func TestBatchedStripesErrors(t *testing.T) {
	be, err := NewBatchedStripes(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	good := [][]uint64{{1, 2}, {3, 4}}
	weights := []uint64{5, 6}
	out := make([]uint64, 2)

	cases := []struct {
		name    string
		windows [][]uint64
		filters [][]uint64
		outs    [][]uint64
	}{
		{"over-range neuron", [][]uint64{{1, 2}, {16, 4}}, [][]uint64{weights}, [][]uint64{out}},
		{"over-range synapse", good, [][]uint64{{5, 99}}, [][]uint64{out}},
		{"ragged window", [][]uint64{{1, 2}, {3}}, [][]uint64{weights}, [][]uint64{out}},
		{"weights length", good, [][]uint64{{5}}, [][]uint64{out}},
		{"out length", good, [][]uint64{weights}, [][]uint64{make([]uint64, 1)}},
		{"outs rows", good, [][]uint64{weights}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := be.FilterBatch(tc.windows, tc.filters, tc.outs); err == nil {
				t.Fatal("batched call unexpectedly succeeded")
			}
		})
	}

	// The sequential oracle rejects the operand cases too.
	if _, _, err := be.Fast().DotProduct([]uint64{16, 4}, weights); err == nil {
		t.Fatal("sequential path accepted an over-range neuron")
	}
	if _, _, err := be.Fast().DotProduct([]uint64{1, 2}, []uint64{5, 99}); err == nil {
		t.Fatal("sequential path accepted an over-range synapse")
	}
}

// TestBatchedStripesConcurrent hammers one shared engine from many
// goroutines (pooled scratch must not be shared across calls); run
// under -race.
func TestBatchedStripesConcurrent(t *testing.T) {
	be, err := NewBatchedStripes(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	windows := make([][]uint64, 64)
	for w := range windows {
		win := make([]uint64, 48)
		for i := range win {
			win[i] = rng.Uint64() & 15
		}
		windows[w] = win
	}
	weights := make([]uint64, 48)
	for i := range weights {
		weights[i] = rng.Uint64() & 15
	}
	want := make([]uint64, len(windows))
	if _, err := be.DotBatch(windows, weights, want); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]uint64, len(windows))
			for iter := 0; iter < 50; iter++ {
				if _, err := be.DotBatch(windows, weights, out); err != nil {
					t.Error(err)
					return
				}
				for i := range out {
					if out[i] != want[i] {
						t.Errorf("concurrent result diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
