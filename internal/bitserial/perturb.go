package bitserial

import (
	"fmt"
	"math"
	"math/rand"
)

// FlipRates is the per-bit error injection a PerturbedEngine applies:
// the probability that any given bit of a multiply's product word flips
// (Mul), and the probability that any given bit of the running
// accumulator flips after a merge add (Acc). The rates encode *where*
// each PIXEL design is exposed to device variation: the electrical EE
// design is immune (both zero), the hybrid OE design multiplies
// optically but accumulates electrically (Mul only), and the
// all-optical OO design is exposed on both (Mul and Acc). The mapping
// from physical perturbations to these rates lives in
// internal/montecarlo.
type FlipRates struct {
	// Mul is the per-bit flip probability applied to each multiply's
	// product word (the low 2*Bits() bits).
	Mul float64
	// Acc is the per-bit flip probability applied to the full
	// accumulator word after each merge add.
	Acc float64
}

// Validate reports an error for rates outside [0, 1].
func (r FlipRates) Validate() error {
	if r.Mul < 0 || r.Mul > 1 || math.IsNaN(r.Mul) {
		return fmt.Errorf("bitserial: multiply flip rate %v out of [0,1]", r.Mul)
	}
	if r.Acc < 0 || r.Acc > 1 || math.IsNaN(r.Acc) {
		return fmt.Errorf("bitserial: accumulate flip rate %v out of [0,1]", r.Acc)
	}
	return nil
}

// Zero reports whether no injection happens at these rates.
func (r FlipRates) Zero() bool { return r.Mul <= 0 && r.Acc <= 0 }

// flipStream injects bit flips into a stream of words at a fixed
// per-bit probability, using geometric gap sampling: instead of one
// uniform draw per bit (ruinous for whole-CNN trials), it draws the
// gap to the next flip, G ~ Geometric(p), and skips that many clean
// bits in O(1). One uniform is consumed per *flip*, so the draw at
// position k is the same for every rate — which makes the number of
// flips within a fixed-length stream monotone non-decreasing in p for
// a fixed seed. The Monte-Carlo engine leans on that coupling: a
// higher-σ trial sharing a trial seed injects a superset count of
// errors, so yield curves degrade monotonically rather than jitter
// with resampling noise.
type flipStream struct {
	p   float64
	rng *rand.Rand
	// countdown is the number of clean bits remaining before the next
	// scheduled flip.
	countdown uint64
	flips     int64
	bits      int64
	// words counts exposed words that took at least one flip; oddWords
	// counts those that took an odd number — the word-level errors a
	// per-word parity lane can detect (even flip counts cancel in the
	// parity bit and escape).
	words    int64
	oddWords int64
}

// maxGap bounds a sampled gap so float rounding at tiny p cannot
// overflow the countdown arithmetic; 1<<60 bits is ~10^9 LeNet
// inferences, far beyond any run length.
const maxGap = uint64(1) << 60

func newFlipStream(p float64, rng *rand.Rand) *flipStream {
	s := &flipStream{p: p, rng: rng}
	if p > 0 {
		s.countdown = s.gap()
	}
	return s
}

// gap draws the number of clean bits before the next flip.
func (s *flipStream) gap() uint64 {
	if s.p >= 1 {
		return 0
	}
	// 1-Float64() is in (0, 1], keeping the log finite.
	g := math.Floor(math.Log(1-s.rng.Float64()) / math.Log1p(-s.p))
	if !(g >= 0) || g > float64(maxGap) {
		return maxGap
	}
	return uint64(g)
}

// apply advances the stream over the low `width` bits of v, flipping
// the scheduled ones. A zero-rate stream is a no-op and consumes no
// randomness, so a PerturbedEngine with zero rates is bit-identical to
// the unperturbed engine without touching its RNGs.
func (s *flipStream) apply(v uint64, width int) uint64 {
	if s.p <= 0 {
		return v
	}
	s.bits += int64(width)
	w := uint64(width)
	var flipped int64
	for s.countdown < w {
		v ^= uint64(1) << s.countdown
		flipped++
		gap := s.gap()
		if gap >= maxGap-s.countdown {
			s.countdown = maxGap
			break
		}
		s.countdown += 1 + gap
	}
	s.countdown -= w
	if flipped > 0 {
		s.flips += flipped
		s.words++
		if flipped&1 == 1 {
			s.oddWords++
		}
	}
	return v
}

// PerturbedEngine is a FastEngine that injects seeded bit errors into
// the bit-serial datapath: multiply product bits flip at rates.Mul and
// the running accumulator flips at rates.Acc after each merge, while
// Stats stay the closed-form work counts of the unperturbed design
// (variation corrupts values, not the cycle count). With both rates
// zero it is bit-identical to FastEngine — pinned by
// TestPerturbedZeroRatesDegeneracy and, end to end, by the Monte-Carlo
// σ=0 golden test.
//
// A PerturbedEngine consumes its rand streams in datapath order, so it
// is NOT safe for concurrent use; the Monte-Carlo engine runs one
// engine per trial, serially within the trial, and parallelizes across
// trials.
type PerturbedEngine struct {
	base      *FastEngine
	rates     FlipRates
	mul       *flipStream
	acc       *flipStream
	prodWidth int
}

var _ Stripes = (*PerturbedEngine)(nil)

// NewPerturbedEngine returns a fault-injecting engine with the same
// operand and accumulator geometry as NewFastEngine(bits, terms). A
// rand stream is required for each non-zero rate (mulRng for Mul,
// accRng for Acc); unused streams may be nil.
func NewPerturbedEngine(bits, terms int, rates FlipRates, mulRng, accRng *rand.Rand) (*PerturbedEngine, error) {
	if err := rates.Validate(); err != nil {
		return nil, err
	}
	if rates.Mul > 0 && mulRng == nil {
		return nil, fmt.Errorf("bitserial: multiply flip rate %v needs a rand stream", rates.Mul)
	}
	if rates.Acc > 0 && accRng == nil {
		return nil, fmt.Errorf("bitserial: accumulate flip rate %v needs a rand stream", rates.Acc)
	}
	base, err := NewFastEngine(bits, terms)
	if err != nil {
		return nil, err
	}
	return &PerturbedEngine{
		base:      base,
		rates:     rates,
		mul:       newFlipStream(rates.Mul, mulRng),
		acc:       newFlipStream(rates.Acc, accRng),
		prodWidth: 2 * bits,
	}, nil
}

// Bits returns the operand precision.
func (e *PerturbedEngine) Bits() int { return e.base.bits }

// AccumulatorWidth returns the accumulator width in bits.
func (e *PerturbedEngine) AccumulatorWidth() int { return e.base.accWidth }

// Rates returns the engine's injection rates.
func (e *PerturbedEngine) Rates() FlipRates { return e.rates }

// InjectedFlips returns the total number of bits flipped so far.
func (e *PerturbedEngine) InjectedFlips() int64 { return e.mul.flips + e.acc.flips }

// CorruptedWords returns how many exposed words took at least one
// flip so far.
func (e *PerturbedEngine) CorruptedWords() int64 { return e.mul.words + e.acc.words }

// OddFlipWords returns how many exposed words took an odd number of
// flips so far — the word-level errors a per-word parity wavelength
// detects. Words with an even flip count cancel in the parity bit and
// escape detection, which is exactly the blind spot a real parity
// frame has; internal/protect's detect-and-retry scheme keys off this
// counter so its coverage is faithful rather than oracle-perfect.
func (e *PerturbedEngine) OddFlipWords() int64 { return e.mul.oddWords + e.acc.oddWords }

// BitsExposed returns how many bits have passed through active
// (non-zero-rate) injection streams — the denominator of the injected
// bit-error rate.
func (e *PerturbedEngine) BitsExposed() int64 { return e.mul.bits + e.acc.bits }

// InjectedBER returns the realized injected bit-error rate, 0 when no
// stream is active.
func (e *PerturbedEngine) InjectedBER() float64 {
	exposed := e.BitsExposed()
	if exposed == 0 {
		return 0
	}
	return float64(e.InjectedFlips()) / float64(exposed)
}

// Multiply computes neuron*synapse and flips product bits at the Mul
// rate. A product of two Bits()-wide operands spans at most 2*Bits()
// bits, and flips are confined to that window, so a corrupted product
// still fits the accumulator.
func (e *PerturbedEngine) Multiply(neuron, synapse uint64) (uint64, Stats, error) {
	v, st, err := e.base.Multiply(neuron, synapse)
	if err != nil {
		return 0, Stats{}, err
	}
	return e.mul.apply(v, e.prodWidth) & e.base.accMask, st, nil
}

// DotProduct mirrors FastEngine.DotProduct with injection: each
// element's product is corrupted at the Mul rate before the merge, and
// the running accumulator is corrupted at the Acc rate after it.
func (e *PerturbedEngine) DotProduct(neurons, synapses []uint64) (uint64, Stats, error) {
	if len(neurons) != len(synapses) {
		return 0, Stats{}, fmt.Errorf("bitserial: vector lengths differ (%d vs %d)", len(neurons), len(synapses))
	}
	for i := range neurons {
		if err := e.base.checkOperand("neuron", neurons[i]); err != nil {
			return 0, Stats{}, err
		}
		if err := e.base.checkOperand("synapse", synapses[i]); err != nil {
			return 0, Stats{}, err
		}
	}
	var acc uint64
	for i := range neurons {
		p := e.mul.apply(neurons[i]*synapses[i]&e.base.accMask, e.prodWidth)
		acc = (acc + p) & e.base.accMask
		acc = e.acc.apply(acc, e.base.accWidth)
	}
	n := len(neurons)
	st := e.base.multiplyStats()
	st.Adds++
	return acc, Stats{
		Cycles:  n * st.Cycles,
		BitANDs: n * st.BitANDs,
		Adds:    n * st.Adds,
		Shifts:  n * st.Shifts,
	}, nil
}

// Window mirrors FastEngine.Window through the perturbed datapath; the
// cross-filter merge is electrical in every design and stays clean.
func (e *PerturbedEngine) Window(inputs [][]uint64, synapses [][][]uint64) ([]uint64, Stats, error) {
	var st Stats
	out := make([]uint64, len(synapses))
	for k, filter := range synapses {
		if len(filter) != len(inputs) {
			return nil, Stats{}, fmt.Errorf("bitserial: filter %d has %d lanes, inputs have %d", k, len(filter), len(inputs))
		}
		var acc uint64
		for lane := range filter {
			v, vs, err := e.DotProduct(inputs[lane], filter[lane])
			if err != nil {
				return nil, Stats{}, fmt.Errorf("bitserial: filter %d lane %d: %w", k, lane, err)
			}
			acc = (acc + v) & e.base.accMask
			vs.Adds++
			st.add(vs)
		}
		out[k] = acc
	}
	if len(synapses) > 0 && len(inputs) > 0 {
		st.Cycles = len(inputs[0]) * e.base.bits
	}
	return out, st, nil
}
