package bitserial

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// enginePair builds the gate-model oracle and the fast engine at the
// same geometry.
func enginePair(t testing.TB, bits, terms int) (*Engine, *FastEngine) {
	t.Helper()
	gate, err := NewEngine(bits, terms)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewFastEngine(bits, terms)
	if err != nil {
		t.Fatal(err)
	}
	if gate.Bits() != fast.Bits() || gate.AccumulatorWidth() != fast.AccumulatorWidth() {
		t.Fatalf("geometry mismatch: gate %d/%d, fast %d/%d",
			gate.Bits(), gate.AccumulatorWidth(), fast.Bits(), fast.AccumulatorWidth())
	}
	return gate, fast
}

// TestFastEngineEquivalence is the testing/quick property pinning the
// fast engine to the gate-model oracle: for random geometry and random
// in-range vectors, Multiply and DotProduct return identical values
// AND identical Stats.
func TestFastEngineEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(16)
		terms := 1 + rng.Intn(200)
		gate, fast := enginePair(t, bits, terms)
		mask := (uint64(1) << uint(bits)) - 1

		// Multiply.
		n := rng.Uint64() & mask
		s := rng.Uint64() & mask
		gv, gst, gerr := gate.Multiply(n, s)
		fv, fst, ferr := fast.Multiply(n, s)
		if gerr != nil || ferr != nil {
			t.Logf("multiply errored: %v / %v", gerr, ferr)
			return false
		}
		if gv != fv || gst != fst {
			t.Logf("multiply(%d,%d) bits=%d: gate (%d,%+v), fast (%d,%+v)", n, s, bits, gv, gst, fv, fst)
			return false
		}

		// DotProduct, deliberately allowed to exceed `terms` sometimes
		// so accumulator wraparound is exercised identically.
		ln := 1 + rng.Intn(2*terms)
		ns := make([]uint64, ln)
		ss := make([]uint64, ln)
		for i := range ns {
			ns[i] = rng.Uint64() & mask
			ss[i] = rng.Uint64() & mask
		}
		gv, gst, gerr = gate.DotProduct(ns, ss)
		fv, fst, ferr = fast.DotProduct(ns, ss)
		if gerr != nil || ferr != nil {
			t.Logf("dot errored: %v / %v", gerr, ferr)
			return false
		}
		if gv != fv || gst != fst {
			t.Logf("dot len=%d bits=%d: gate (%d,%+v), fast (%d,%+v)", ln, bits, gv, gst, fv, fst)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFastEngineWindowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gate, fast := enginePair(t, 6, 64)
	mask := uint64(63)
	lanes, filters, elems := 3, 4, 5
	inputs := make([][]uint64, lanes)
	for i := range inputs {
		inputs[i] = make([]uint64, elems)
		for j := range inputs[i] {
			inputs[i][j] = rng.Uint64() & mask
		}
	}
	synapses := make([][][]uint64, filters)
	for k := range synapses {
		synapses[k] = make([][]uint64, lanes)
		for i := range synapses[k] {
			synapses[k][i] = make([]uint64, elems)
			for j := range synapses[k][i] {
				synapses[k][i][j] = rng.Uint64() & mask
			}
		}
	}
	gv, gst, err := gate.Window(inputs, synapses)
	if err != nil {
		t.Fatal(err)
	}
	fv, fst, err := fast.Window(inputs, synapses)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gv, fv) || gst != fst {
		t.Fatalf("window: gate (%v,%+v), fast (%v,%+v)", gv, gst, fv, fst)
	}
}

// TestFastEngineErrors checks the fast engine rejects exactly what the
// oracle rejects.
func TestFastEngineErrors(t *testing.T) {
	gate, fast := enginePair(t, 4, 8)
	if _, _, err := fast.Multiply(16, 1); err == nil {
		t.Error("out-of-range neuron should error")
	}
	if _, _, err := fast.Multiply(1, 16); err == nil {
		t.Error("out-of-range synapse should error")
	}
	if _, _, err := fast.DotProduct([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := fast.DotProduct([]uint64{1, 99}, []uint64{1, 2}); err == nil {
		t.Error("out-of-range vector element should error")
	}
	// Error parity with the oracle on the same bad input.
	_, _, gerr := gate.DotProduct([]uint64{1, 99}, []uint64{1, 2})
	_, _, ferr := fast.DotProduct([]uint64{1, 99}, []uint64{1, 2})
	if (gerr == nil) != (ferr == nil) || gerr.Error() != ferr.Error() {
		t.Errorf("error parity: gate %q, fast %q", gerr, ferr)
	}
	if _, err := NewFastEngine(0, 1); err == nil {
		t.Error("bits 0 should error")
	}
	if _, err := NewFastEngine(25, 1); err == nil {
		t.Error("bits 25 should error")
	}
	if _, err := NewFastEngine(8, 0); err == nil {
		t.Error("terms 0 should error")
	}
	if _, err := NewFastEngine(24, 1<<17); err == nil {
		t.Error("accumulator wider than 64 bits should error")
	}
}
