package bitserial

import (
	"testing"
	"testing/quick"
)

func TestOffsetCodecRange(t *testing.T) {
	c, err := NewOffsetCodec(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.MinValue() != -128 || c.MaxValue() != 127 || c.Offset() != 128 || c.Bits() != 8 {
		t.Errorf("codec bounds wrong: %+v", c)
	}
	if _, err := c.Encode(-129); err == nil {
		t.Error("-129 should be out of range")
	}
	if _, err := c.Encode(128); err == nil {
		t.Error("128 should be out of range")
	}
	u, err := c.Encode(-128)
	if err != nil || u != 0 {
		t.Errorf("Encode(-128) = %d, %v; want 0", u, err)
	}
	u, _ = c.Encode(127)
	if u != 255 {
		t.Errorf("Encode(127) = %d, want 255", u)
	}
}

func TestNewOffsetCodecValidation(t *testing.T) {
	if _, err := NewOffsetCodec(1); err == nil {
		t.Error("1-bit signed should error")
	}
	if _, err := NewOffsetCodec(25); err == nil {
		t.Error("25-bit should error")
	}
}

func TestSignedMultiplyKnownValues(t *testing.T) {
	e, err := NewSignedEngine(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{5, 7, 35},
		{-5, 7, -35},
		{5, -7, -35},
		{-5, -7, 35},
		{-128, 127, -16256},
		{-128, -128, 16384},
		{127, 127, 16129},
	}
	for _, c := range cases {
		got, _, err := e.Multiply(c.a, c.b)
		if err != nil || got != c.want {
			t.Errorf("Multiply(%d,%d) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
	}
}

func TestSignedMultiplyProperty(t *testing.T) {
	e, _ := NewSignedEngine(8, 1)
	f := func(a, b int8) bool {
		got, _, err := e.Multiply(int64(a), int64(b))
		return err == nil && got == int64(a)*int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSignedDotProductProperty(t *testing.T) {
	const terms = 16
	e, _ := NewSignedEngine(6, terms)
	f := func(raw [terms * 2]int8) bool {
		ns := make([]int64, terms)
		ss := make([]int64, terms)
		var want int64
		for i := 0; i < terms; i++ {
			ns[i] = int64(raw[i]) % 32 // 6-bit signed range
			ss[i] = int64(raw[terms+i]) % 32
			want += ns[i] * ss[i]
		}
		got, _, err := e.DotProduct(ns, ss)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSignedDotProductValidation(t *testing.T) {
	e, _ := NewSignedEngine(8, 4)
	if _, _, err := e.DotProduct([]int64{1}, []int64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := e.DotProduct([]int64{999}, []int64{1}); err == nil {
		t.Error("out-of-range operand should error")
	}
}

func TestSignedStatsIncludeCorrectionAdds(t *testing.T) {
	e, _ := NewSignedEngine(4, 2)
	_, st, err := e.DotProduct([]int64{3, -2}, []int64{-1, 5})
	if err != nil {
		t.Fatal(err)
	}
	// The unsigned path's adds plus 2 correction adds per term.
	u, _ := NewEngine(4, 2)
	_, ust, _ := u.DotProduct([]uint64{11, 6}, []uint64{7, 13})
	if st.Adds != ust.Adds+4 {
		t.Errorf("signed adds = %d, want unsigned %d + 4", st.Adds, ust.Adds)
	}
}

func TestCodecCorrectAgainstAlgebra(t *testing.T) {
	c, _ := NewOffsetCodec(4)
	// n = (-3, 2), s = (7, -8); o = 8.
	ns := []int64{-3, 2}
	ss := []int64{7, -8}
	us, _ := c.EncodeVector(ns)
	ws, _ := c.EncodeVector(ss)
	var raw, sumU, sumW uint64
	for i := range us {
		raw += us[i] * ws[i]
		sumU += us[i]
		sumW += ws[i]
	}
	got, err := c.Correct(raw, sumU, sumW, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(-3*7 + 2*(-8)); got != want {
		t.Errorf("Correct = %d, want %d", got, want)
	}
}
