package bitserial

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSweepVectorMatchesScalar is the asm-vs-scalar acceptance
// property: with the vector kernels forced on, FilterBatch must produce
// exactly the values AND Stats the scalar sweep produces, across
// operand precisions (including 24-bit, the widest), packed and
// unpacked column stores, batch sizes off the 64-lane and 4-word block
// boundaries, zero-weight runs, and accumulator wraparound. On hosts
// (or builds) without the kernels it skips — the purego CI leg proves
// the scalar path alone, the amd64 leg pins the two together.
func TestSweepVectorMatchesScalar(t *testing.T) {
	if !VectorSweep() {
		t.Skip("no vector sweep kernels on this host/build")
	}
	defer setVecForTest(true)

	type config struct {
		bits, terms int
		packed      bool // which store the geometry selects (documentation; asserted below)
	}
	// terms beyond 1<<18 push accWidth past 32 bits, forcing the
	// unpacked one-lane-per-word store; small terms with bits<=12 keep
	// accWidth<=32 and n*maxProd<2^32, selecting the packed store.
	configs := []config{
		{bits: 1, terms: 3, packed: true},
		{bits: 4, terms: 512, packed: true},
		{bits: 8, terms: 16, packed: true},
		{bits: 12, terms: 9, packed: true},
		{bits: 8, terms: 1 << 20, packed: false},
		{bits: 16, terms: 1 << 18, packed: false},
		{bits: 24, terms: 64, packed: false},
	}
	rng := rand.New(rand.NewSource(41))
	for _, cfg := range configs {
		for _, batch := range []int{1, 3, 8, 63, 64, 65, 100} {
			t.Run(fmt.Sprintf("bits%d/terms%d/B%d", cfg.bits, cfg.terms, batch), func(t *testing.T) {
				be, err := NewBatchedStripes(cfg.bits, cfg.terms)
				if err != nil {
					t.Fatal(err)
				}
				maxProd := ((uint64(1) << cfg.bits) - 1) * ((uint64(1) << cfg.bits) - 1)
				mask := uint64(1)<<uint(cfg.bits) - 1
				// Windows longer than the sized term count wrap the
				// accumulator on both paths (bounded so unpacked configs
				// stay fast).
				n := 1 + rng.Intn(192)
				if gotPacked := be.fe.accWidth <= 32 && maxProd > 0 && uint64(n) <= (1<<32-1)/maxProd; gotPacked != cfg.packed {
					t.Fatalf("geometry selects packed=%v, config expects %v", gotPacked, cfg.packed)
				}
				nFilters := 1 + rng.Intn(7) // cover quad, pair and single tails

				windows := make([][]uint64, batch)
				for w := range windows {
					win := make([]uint64, n)
					for i := range win {
						win[i] = rng.Uint64() & mask
					}
					windows[w] = win
				}
				filters := make([][]uint64, nFilters)
				for f := range filters {
					fl := make([]uint64, n)
					for i := range fl {
						if rng.Intn(3) == 0 {
							continue // keep real zero weights in play
						}
						fl[i] = rng.Uint64() & mask
					}
					filters[f] = fl
				}
				run := func(vec bool) ([][]uint64, Stats, error) {
					prev := setVecForTest(vec)
					defer setVecForTest(prev)
					if VectorSweep() != vec {
						t.Fatalf("setVecForTest(%v) did not take", vec)
					}
					outs := make([][]uint64, nFilters)
					for f := range outs {
						outs[f] = make([]uint64, batch)
					}
					st, err := be.FilterBatch(windows, filters, outs)
					return outs, st, err
				}
				vecOuts, vecStats, vecErr := run(true)
				scalOuts, scalStats, scalErr := run(false)
				if (vecErr == nil) != (scalErr == nil) {
					t.Fatalf("error mismatch: vec %v, scalar %v", vecErr, scalErr)
				}
				if vecStats != scalStats {
					t.Fatalf("stats diverge: vec %+v, scalar %+v", vecStats, scalStats)
				}
				for f := range vecOuts {
					for w := range vecOuts[f] {
						if vecOuts[f][w] != scalOuts[f][w] {
							t.Fatalf("outs[%d][%d]: vec %d != scalar %d",
								f, w, vecOuts[f][w], scalOuts[f][w])
						}
					}
				}
			})
		}
	}
}

// TestSweepVectorQuick hammers the vector-vs-scalar equivalence with
// testing/quick-driven random geometry, including degenerate shapes
// (empty windows, single lanes) the table above cannot enumerate.
func TestSweepVectorQuick(t *testing.T) {
	if !VectorSweep() {
		t.Skip("no vector sweep kernels on this host/build")
	}
	defer setVecForTest(true)

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + rng.Intn(24)
		terms := 1 + rng.Intn(1<<uint(rng.Intn(21)))
		be, err := NewBatchedStripes(bits, terms)
		if err != nil {
			return true // accumulator wider than 64 bits: nothing to compare
		}
		mask := uint64(1)<<uint(bits) - 1
		n := rng.Intn(64)
		batch := 1 + rng.Intn(70)
		nFilters := 1 + rng.Intn(6)
		windows := make([][]uint64, batch)
		for w := range windows {
			win := make([]uint64, n)
			for i := range win {
				win[i] = rng.Uint64() & mask
			}
			windows[w] = win
		}
		filters := make([][]uint64, nFilters)
		for f := range filters {
			fl := make([]uint64, n)
			for i := range fl {
				if rng.Intn(4) != 0 {
					fl[i] = rng.Uint64() & mask
				}
			}
			filters[f] = fl
		}
		outs := func() [][]uint64 {
			o := make([][]uint64, nFilters)
			for f := range o {
				o[f] = make([]uint64, batch)
			}
			return o
		}
		vec, scal := outs(), outs()
		setVecForTest(true)
		vecStats, err1 := be.FilterBatch(windows, filters, vec)
		setVecForTest(false)
		scalStats, err2 := be.FilterBatch(windows, filters, scal)
		setVecForTest(true)
		if (err1 == nil) != (err2 == nil) || vecStats != scalStats {
			return false
		}
		for f := range vec {
			for w := range vec[f] {
				if vec[f][w] != scal[f][w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
