package bitserial

import (
	"fmt"

	"pixel/internal/elec"
)

// Stripes is the engine surface shared by the gate-model Engine and
// the word-level FastEngine, so callers (and the equivalence tests)
// can treat either as the electrical ground truth.
type Stripes interface {
	Bits() int
	AccumulatorWidth() int
	Multiply(neuron, synapse uint64) (uint64, Stats, error)
	DotProduct(neurons, synapses []uint64) (uint64, Stats, error)
	Window(inputs [][]uint64, synapses [][][]uint64) ([]uint64, Stats, error)
}

var (
	_ Stripes = (*Engine)(nil)
	_ Stripes = (*FastEngine)(nil)
)

// FastEngine computes the same bit-serial results as Engine without
// simulating the CLA adder and barrel shifter cycle by cycle. Both the
// value and the Stats of a Stripes multiply are closed-form — the
// accumulator wraps at the accumulator width, and each multiply costs
// Cycles = bits, BitANDs = bits², Adds = Shifts = bits — so a word-level
// multiply plus masking reproduces the gate model exactly. The gate
// model stays as the oracle; TestFastEngineEquivalence pins the two
// together over random operands.
//
// A FastEngine is stateless after construction and safe for concurrent
// use, which is what lets the parallel qnn pipeline run whole CNNs
// through the Stripes datapath across a worker pool.
type FastEngine struct {
	bits     int
	accWidth int
	mask     uint64
	accMask  uint64
}

// NewFastEngine returns a fast engine with the same operand and
// accumulator geometry as NewEngine(bits, terms).
func NewFastEngine(bits, terms int) (*FastEngine, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("bitserial: operand width %d out of range [1,24]", bits)
	}
	if terms < 1 {
		return nil, fmt.Errorf("bitserial: term count must be >= 1")
	}
	accWidth := elec.AccumulatorWidth(bits, terms)
	if accWidth > 64 {
		return nil, fmt.Errorf("bitserial: accumulator width %d exceeds 64 bits", accWidth)
	}
	accMask := ^uint64(0)
	if accWidth < 64 {
		accMask = (uint64(1) << uint(accWidth)) - 1
	}
	return &FastEngine{
		bits:     bits,
		accWidth: accWidth,
		mask:     (uint64(1) << uint(bits)) - 1,
		accMask:  accMask,
	}, nil
}

// Bits returns the operand precision.
func (e *FastEngine) Bits() int { return e.bits }

// AccumulatorWidth returns the accumulator width in bits.
func (e *FastEngine) AccumulatorWidth() int { return e.accWidth }

// checkOperand validates that v fits in the engine's precision.
func (e *FastEngine) checkOperand(name string, v uint64) error {
	if v > e.mask {
		return fmt.Errorf("bitserial: %s %d exceeds %d-bit range", name, v, e.bits)
	}
	return nil
}

// multiplyStats is the closed-form work record of one bit-serial
// multiply: one synapse bit per cycle gating the bits-wide neuron word
// (bits ANDs per cycle), one shift and one accumulate per cycle.
func (e *FastEngine) multiplyStats() Stats {
	return Stats{
		Cycles:  e.bits,
		BitANDs: e.bits * e.bits,
		Adds:    e.bits,
		Shifts:  e.bits,
	}
}

// Multiply returns the identical (value, Stats) the gate-model Engine
// produces. The product of two bits-wide operands always fits in the
// 2*bits-or-wider accumulator, so the word multiply is exact; the mask
// is kept for form.
func (e *FastEngine) Multiply(neuron, synapse uint64) (uint64, Stats, error) {
	if err := e.checkOperand("neuron", neuron); err != nil {
		return 0, Stats{}, err
	}
	if err := e.checkOperand("synapse", synapse); err != nil {
		return 0, Stats{}, err
	}
	return (neuron * synapse) & e.accMask, e.multiplyStats(), nil
}

// DotProduct mirrors Engine.DotProduct: per element, one multiply plus
// one merge add, with the running sum wrapping at the accumulator
// width exactly as the CLA does.
func (e *FastEngine) DotProduct(neurons, synapses []uint64) (uint64, Stats, error) {
	if len(neurons) != len(synapses) {
		return 0, Stats{}, fmt.Errorf("bitserial: vector lengths differ (%d vs %d)", len(neurons), len(synapses))
	}
	for i := range neurons {
		if err := e.checkOperand("neuron", neurons[i]); err != nil {
			return 0, Stats{}, err
		}
		if err := e.checkOperand("synapse", synapses[i]); err != nil {
			return 0, Stats{}, err
		}
	}
	var acc uint64
	for i := range neurons {
		acc = (acc + neurons[i]*synapses[i]) & e.accMask
	}
	n := len(neurons)
	st := e.multiplyStats()
	st.Adds++ // the per-element merge into the running sum
	return acc, Stats{
		Cycles:  n * st.Cycles,
		BitANDs: n * st.BitANDs,
		Adds:    n * st.Adds,
		Shifts:  n * st.Shifts,
	}, nil
}

// Window mirrors Engine.Window: per filter, the lane dot products are
// merged with one extra add each, and the cycle count collapses to
// elements * bits because lanes and filters run in parallel.
func (e *FastEngine) Window(inputs [][]uint64, synapses [][][]uint64) ([]uint64, Stats, error) {
	var st Stats
	out := make([]uint64, len(synapses))
	for k, filter := range synapses {
		if len(filter) != len(inputs) {
			return nil, Stats{}, fmt.Errorf("bitserial: filter %d has %d lanes, inputs have %d", k, len(filter), len(inputs))
		}
		var acc uint64
		for lane := range filter {
			v, vs, err := e.DotProduct(inputs[lane], filter[lane])
			if err != nil {
				return nil, Stats{}, fmt.Errorf("bitserial: filter %d lane %d: %w", k, lane, err)
			}
			acc = (acc + v) & e.accMask
			vs.Adds++
			st.add(vs)
		}
		out[k] = acc
	}
	if len(synapses) > 0 && len(inputs) > 0 {
		st.Cycles = len(inputs[0]) * e.bits
	}
	return out, st, nil
}
