package bitserial

import (
	"fmt"
	"math"
)

// Signed MAC support. The optical AND stage is inherently unsigned
// (light is either present or not), so signed operands use *offset
// binary*: each value v in [-2^(b-1), 2^(b-1)-1] is encoded as
// u = v + 2^(b-1), the unsigned datapath computes the dot product of
// the encoded vectors, and the exact signed result is recovered
// algebraically:
//
//	sum(n_i * s_i) = sum(u_i * w_i) - o*sum(u_i) - o*sum(w_i) + k*o^2
//
// with o = 2^(b-1) and k the term count. The correction needs only two
// extra running sums — narrow electrical adders in hardware — so the
// same OE/OO optics serve signed networks unchanged.

// OffsetCodec encodes/decodes signed operands for an unsigned MAC
// datapath of the given precision.
type OffsetCodec struct {
	bits   int
	offset int64
}

// NewOffsetCodec returns a codec for signed values of the given
// precision (2..24 bits).
func NewOffsetCodec(bits int) (*OffsetCodec, error) {
	if bits < 2 || bits > 24 {
		return nil, fmt.Errorf("bitserial: signed precision %d out of range [2,24]", bits)
	}
	return &OffsetCodec{bits: bits, offset: 1 << uint(bits-1)}, nil
}

// Bits returns the operand precision.
func (c *OffsetCodec) Bits() int { return c.bits }

// Offset returns the encoding offset 2^(bits-1).
func (c *OffsetCodec) Offset() int64 { return c.offset }

// MinValue and MaxValue bound the representable signed range.
func (c *OffsetCodec) MinValue() int64 { return -c.offset }
func (c *OffsetCodec) MaxValue() int64 { return c.offset - 1 }

// Encode maps a signed value into the unsigned operand range.
func (c *OffsetCodec) Encode(v int64) (uint64, error) {
	if v < c.MinValue() || v > c.MaxValue() {
		return 0, fmt.Errorf("bitserial: %d outside signed %d-bit range [%d,%d]",
			v, c.bits, c.MinValue(), c.MaxValue())
	}
	return uint64(v + c.offset), nil
}

// EncodeVector encodes a signed vector.
func (c *OffsetCodec) EncodeVector(vs []int64) ([]uint64, error) {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		u, err := c.Encode(v)
		if err != nil {
			return nil, err
		}
		out[i] = u
	}
	return out, nil
}

// Correct recovers the signed dot product from the unsigned result and
// the encoded operand sums: raw = sum(u*w), sumU = sum(u), sumW =
// sum(w), k = term count.
func (c *OffsetCodec) Correct(raw uint64, sumU, sumW uint64, k int) (int64, error) {
	o := c.offset
	if raw > math.MaxInt64 {
		return 0, fmt.Errorf("bitserial: raw accumulation overflows int64")
	}
	res := int64(raw) - o*int64(sumU) - o*int64(sumW) + int64(k)*o*o
	return res, nil
}

// SignedEngine computes signed dot products on the unsigned bit-serial
// engine via the offset codec.
type SignedEngine struct {
	codec  *OffsetCodec
	engine *Engine
}

// NewSignedEngine returns a signed engine for the given precision and
// maximum dot-product length.
func NewSignedEngine(bits, terms int) (*SignedEngine, error) {
	codec, err := NewOffsetCodec(bits)
	if err != nil {
		return nil, err
	}
	engine, err := NewEngine(bits, terms)
	if err != nil {
		return nil, err
	}
	return &SignedEngine{codec: codec, engine: engine}, nil
}

// Codec exposes the codec (for datapaths that run the unsigned part on
// other hardware, e.g. the optical units).
func (s *SignedEngine) Codec() *OffsetCodec { return s.codec }

// DotProduct computes the signed inner product bit-serially.
func (s *SignedEngine) DotProduct(ns, ss []int64) (int64, Stats, error) {
	if len(ns) != len(ss) {
		return 0, Stats{}, fmt.Errorf("bitserial: vector lengths differ (%d vs %d)", len(ns), len(ss))
	}
	us, err := s.codec.EncodeVector(ns)
	if err != nil {
		return 0, Stats{}, err
	}
	ws, err := s.codec.EncodeVector(ss)
	if err != nil {
		return 0, Stats{}, err
	}
	raw, st, err := s.engine.DotProduct(us, ws)
	if err != nil {
		return 0, Stats{}, err
	}
	var sumU, sumW uint64
	for i := range us {
		sumU += us[i]
		sumW += ws[i]
	}
	// Two extra accumulations per term for the running sums.
	st.Adds += 2 * len(us)
	v, err := s.codec.Correct(raw, sumU, sumW, len(us))
	if err != nil {
		return 0, Stats{}, err
	}
	return v, st, nil
}

// Multiply computes a signed product.
func (s *SignedEngine) Multiply(n, m int64) (int64, Stats, error) {
	v, st, err := s.DotProduct([]int64{n}, []int64{m})
	return v, st, err
}
