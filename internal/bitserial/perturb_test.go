package bitserial

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPerturbedZeroRatesDegeneracy: with both rates zero the perturbed
// engine must return the identical (value, Stats) as FastEngine for
// every operation — the σ=0 degeneracy the Monte-Carlo engine builds
// on. The property runs without rand streams at all, proving the
// zero-rate path consumes no randomness.
func TestPerturbedZeroRatesDegeneracy(t *testing.T) {
	const bits, terms = 6, 64
	fast, err := NewFastEngine(bits, terms)
	if err != nil {
		t.Fatal(err)
	}
	pert, err := NewPerturbedEngine(bits, terms, FlipRates{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mask := uint64(1)<<bits - 1

	f := func(a, b uint64, vec [8][2]uint64) bool {
		av, as, aerr := fast.Multiply(a&mask, b&mask)
		bv, bs, berr := pert.Multiply(a&mask, b&mask)
		if av != bv || as != bs || (aerr == nil) != (berr == nil) {
			return false
		}
		ns := make([]uint64, len(vec))
		ss := make([]uint64, len(vec))
		for i, p := range vec {
			ns[i], ss[i] = p[0]&mask, p[1]&mask
		}
		dv, ds, derr := fast.DotProduct(ns, ss)
		pv, ps, perr := pert.DotProduct(ns, ss)
		return dv == pv && ds == ps && (derr == nil) == (perr == nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if pert.InjectedFlips() != 0 || pert.BitsExposed() != 0 {
		t.Errorf("zero-rate engine recorded flips=%d bits=%d", pert.InjectedFlips(), pert.BitsExposed())
	}
}

// TestPerturbedWindowZeroRates pins the Window path too.
func TestPerturbedWindowZeroRates(t *testing.T) {
	fast, _ := NewFastEngine(4, 32)
	pert, _ := NewPerturbedEngine(4, 32, FlipRates{}, nil, nil)
	rng := rand.New(rand.NewSource(7))
	inputs := make([][]uint64, 3)
	syn := make([][][]uint64, 2)
	for l := range inputs {
		inputs[l] = []uint64{uint64(rng.Intn(16)), uint64(rng.Intn(16)), uint64(rng.Intn(16))}
	}
	for k := range syn {
		syn[k] = make([][]uint64, 3)
		for l := range syn[k] {
			syn[k][l] = []uint64{uint64(rng.Intn(16)), uint64(rng.Intn(16)), uint64(rng.Intn(16))}
		}
	}
	want, ws, err := fast.Window(inputs, syn)
	if err != nil {
		t.Fatal(err)
	}
	got, gs, err := pert.Window(inputs, syn)
	if err != nil {
		t.Fatal(err)
	}
	if ws != gs {
		t.Errorf("stats %+v, want %+v", gs, ws)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestPerturbedInjectsAtRateOne: p=1 flips every product bit, so a
// multiply of 0*0 (product 0) must come back with all 2*bits low bits
// set.
func TestPerturbedInjectsAtRateOne(t *testing.T) {
	pert, err := NewPerturbedEngine(4, 4, FlipRates{Mul: 1}, rand.New(rand.NewSource(1)), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := pert.Multiply(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(1)<<8 - 1; v != want {
		t.Errorf("all-flip product = %#x, want %#x", v, want)
	}
	if pert.InjectedFlips() != 8 || pert.BitsExposed() != 8 {
		t.Errorf("flips=%d bits=%d, want 8/8", pert.InjectedFlips(), pert.BitsExposed())
	}
}

// TestFlipCountMonotoneInRate is the coupling property the yield
// curves lean on: for a fixed seed, running the same workload at a
// higher flip rate injects at least as many errors. The gap sampler
// consumes exactly one uniform per flip, so the k-th flip's draw is
// shared across rates and flip positions can only move earlier as p
// grows.
func TestFlipCountMonotoneInRate(t *testing.T) {
	const seed = 99
	workload := func(p float64) int64 {
		s := newFlipStream(p, rand.New(rand.NewSource(seed)))
		for i := 0; i < 5000; i++ {
			s.apply(0, 16)
		}
		return s.flips
	}
	rates := []float64{0, 1e-6, 1e-4, 1e-3, 0.01, 0.05, 0.2, 0.5, 0.9, 1}
	prev := int64(-1)
	for _, p := range rates {
		n := workload(p)
		if n < prev {
			t.Errorf("flips(%g) = %d < flips(previous rate) = %d: not monotone", p, n, prev)
		}
		prev = n
	}
	if got := workload(1); got != 5000*16 {
		t.Errorf("flips(1) = %d, want %d", got, 5000*16)
	}
}

// TestFlipStreamRateConverges sanity-checks the geometric sampler's
// realized rate against its nominal p.
func TestFlipStreamRateConverges(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1} {
		s := newFlipStream(p, rand.New(rand.NewSource(3)))
		for i := 0; i < 200000; i++ {
			s.apply(0, 8)
		}
		got := float64(s.flips) / float64(s.bits)
		if got < 0.8*p || got > 1.2*p {
			t.Errorf("realized rate %g for nominal %g", got, p)
		}
	}
}

// TestPerturbedEngineValidation covers the constructor's error paths.
func TestPerturbedEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewPerturbedEngine(4, 4, FlipRates{Mul: -0.1}, rng, rng); err == nil {
		t.Error("negative rate should error")
	}
	if _, err := NewPerturbedEngine(4, 4, FlipRates{Acc: 1.5}, rng, rng); err == nil {
		t.Error("rate above 1 should error")
	}
	if _, err := NewPerturbedEngine(4, 4, FlipRates{Mul: 0.5}, nil, nil); err == nil {
		t.Error("non-zero Mul without a stream should error")
	}
	if _, err := NewPerturbedEngine(4, 4, FlipRates{Acc: 0.5}, nil, nil); err == nil {
		t.Error("non-zero Acc without a stream should error")
	}
	if _, err := NewPerturbedEngine(0, 4, FlipRates{}, nil, nil); err == nil {
		t.Error("bad bits should error")
	}
	pe, err := NewPerturbedEngine(4, 4, FlipRates{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pe.Multiply(16, 0); err == nil {
		t.Error("out-of-range operand should error")
	}
	if _, _, err := pe.DotProduct([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, _, err := pe.DotProduct([]uint64{99}, []uint64{1}); err == nil {
		t.Error("out-of-range vector element should error")
	}
}
