package bitserial

import "testing"

func BenchmarkMultiply8Bit(b *testing.B) {
	e, err := NewEngine(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Multiply(uint64(i)&255, uint64(i>>8)&255); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDotProduct16x8Bit(b *testing.B) {
	e, err := NewEngine(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	ns := make([]uint64, 16)
	ss := make([]uint64, 16)
	for i := range ns {
		ns[i] = uint64(i * 7 % 256)
		ss[i] = uint64(i * 13 % 256)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.DotProduct(ns, ss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastDotProduct16x8Bit(b *testing.B) {
	e, err := NewFastEngine(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	ns := make([]uint64, 16)
	ss := make([]uint64, 16)
	for i := range ns {
		ns[i] = uint64(i * 7 % 256)
		ss[i] = uint64(i * 13 % 256)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.DotProduct(ns, ss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignedDotProduct(b *testing.B) {
	e, err := NewSignedEngine(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	ns := make([]int64, 16)
	ss := make([]int64, 16)
	for i := range ns {
		ns[i] = int64(i*7%200) - 100
		ss[i] = int64(i*13%200) - 100
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.DotProduct(ns, ss); err != nil {
			b.Fatal(err)
		}
	}
}
