package bitserial

import "testing"

func BenchmarkMultiply8Bit(b *testing.B) {
	e, err := NewEngine(8, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Multiply(uint64(i)&255, uint64(i>>8)&255); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDotProduct16x8Bit(b *testing.B) {
	e, err := NewEngine(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	ns := make([]uint64, 16)
	ss := make([]uint64, 16)
	for i := range ns {
		ns[i] = uint64(i * 7 % 256)
		ss[i] = uint64(i * 13 % 256)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.DotProduct(ns, ss); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastDotProduct16x8Bit(b *testing.B) {
	e, err := NewFastEngine(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	ns := make([]uint64, 16)
	ss := make([]uint64, 16)
	for i := range ns {
		ns[i] = uint64(i * 7 % 256)
		ss[i] = uint64(i * 13 % 256)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.DotProduct(ns, ss); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch builds a LeNet-conv2-shaped workload: 64 windows of 150
// elements against 16 filters at 4-bit precision.
func benchBatch(b *testing.B) (*BatchedStripes, [][]uint64, [][]uint64, [][]uint64) {
	b.Helper()
	be, err := NewBatchedStripes(4, 512)
	if err != nil {
		b.Fatal(err)
	}
	const n, batch, filters = 150, 64, 16
	windows := make([][]uint64, batch)
	for w := range windows {
		win := make([]uint64, n)
		for i := range win {
			win[i] = uint64(w*31+i*7) & 15
		}
		windows[w] = win
	}
	fs := make([][]uint64, filters)
	for f := range fs {
		fl := make([]uint64, n)
		for i := range fl {
			fl[i] = uint64(f*17+i*13) & 15
		}
		fs[f] = fl
	}
	outs := make([][]uint64, filters)
	for f := range outs {
		outs[f] = make([]uint64, batch)
	}
	return be, windows, fs, outs
}

// BenchmarkFilterBatch64x16 is the batched engine on a LeNet-conv2
// shape: 64 windows x 16 filters x 150 elements per call.
func BenchmarkFilterBatch64x16(b *testing.B) {
	be, windows, fs, outs := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := be.FilterBatch(windows, fs, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(windows)*len(fs)*len(windows[0]))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmac/s")
}

// BenchmarkFilterBatch64x16Scalar is BenchmarkFilterBatch64x16 with
// the vector kernels forced off — the portable (purego / non-AVX2)
// sweep. The ratio of the two Mmac/s figures is the SIMD speedup.
func BenchmarkFilterBatch64x16Scalar(b *testing.B) {
	prev := setVecForTest(false)
	defer setVecForTest(prev)
	be, windows, fs, outs := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := be.FilterBatch(windows, fs, outs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(windows)*len(fs)*len(windows[0]))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmac/s")
}

// BenchmarkSequential64x16 is the same workload through per-pair
// FastEngine calls — the baseline FilterBatch must beat.
func BenchmarkSequential64x16(b *testing.B) {
	be, windows, fs, outs := benchBatch(b)
	fe := be.Fast()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f, fl := range fs {
			for w, win := range windows {
				v, _, err := fe.DotProduct(win, fl)
				if err != nil {
					b.Fatal(err)
				}
				outs[f][w] = v
			}
		}
	}
	b.ReportMetric(float64(len(windows)*len(fs)*len(windows[0]))*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mmac/s")
}

func BenchmarkSignedDotProduct(b *testing.B) {
	e, err := NewSignedEngine(8, 16)
	if err != nil {
		b.Fatal(err)
	}
	ns := make([]int64, 16)
	ss := make([]int64, 16)
	for i := range ns {
		ns[i] = int64(i*7%200) - 100
		ss[i] = int64(i*13%200) - 100
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.DotProduct(ns, ss); err != nil {
			b.Fatal(err)
		}
	}
}
