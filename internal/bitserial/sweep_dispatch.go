package bitserial

// Vector-kernel dispatch for the batched filter sweep. On hosts with a
// vector implementation (amd64 with AVX2, unless built with the purego
// tag) the init in sweep_amd64.go plugs the assembly kernels in here;
// everywhere else the pointers stay nil and the scalar sweeps in
// batch.go run alone. The kernels compute lane blocks of four words at
// a time over the same column store the scalar sweep walks; because
// every lane accumulates independently mod 2^64, the two orders of
// summation produce bit-identical accumulators (pinned by
// TestSweepVectorMatchesScalar).
var (
	// useVec gates the vector kernels; false when the build excludes
	// them or the CPU lacks AVX2.
	useVec bool
	// sweepQuadVec computes acc_k[w] = Σ_i cols[i*words+w] * fl_k[i]
	// mod 2^64 for lanes [0, words&^3) and four filters; column values
	// must fit 32 bits (the unpacked lane store, bits <= 24).
	sweepQuadVec func(cols *uint64, words, n int, fl1, fl2, fl3, fl4, acc1, acc2, acc3, acc4 *uint64)
	// sweepQuadPackedVec is sweepQuadVec for the two-lanes-per-word
	// column store: column words are full 64-bit values whose 32-bit
	// halves carry independent lanes, so the kernel multiplies each
	// half separately and recombines (cv*wt == lo*wt + (hi*wt)<<32 mod
	// 2^64 for wt < 2^32).
	sweepQuadPackedVec func(cols *uint64, words, n int, fl1, fl2, fl3, fl4, acc1, acc2, acc3, acc4 *uint64)
)

// VectorSweep reports whether the batched filter sweep is running on
// the host's vector kernels (AVX2) rather than the portable scalar
// loops.
func VectorSweep() bool { return useVec }

// setVecForTest forces the vector kernels on or off, returning the
// previous setting; a no-op "on" when the build has no kernels. Tests
// and benchmarks use it to pin the scalar and vector sweeps against
// each other on the same host.
func setVecForTest(on bool) (prev bool) {
	prev = useVec
	useVec = on && sweepQuadVec != nil
	return prev
}
