// Package bitserial implements the Stripes (STR) methodology the paper
// bases every design on (Judd et al., MICRO 2016): multiply-accumulate
// decomposed into bitwise AND of the full input-neuron word against one
// synapse bit per cycle, followed by a left-shift and accumulate.
//
// The engine is bit-exact and built from the functional hardware models
// of package elec (carry-lookahead adder, barrel shifter), so a result
// computed here is the result the electrical (EE) design produces — the
// ground truth the optical OE and OO datapaths are verified against.
package bitserial

import (
	"fmt"

	"pixel/internal/elec"
)

// Stats counts the work a bit-serial computation performed; the
// architecture model converts these to energy and cycles.
type Stats struct {
	// Cycles is the number of bit-serial cycles consumed (one synapse
	// bit per lane per cycle).
	Cycles int
	// BitANDs is the number of single-bit AND operations.
	BitANDs int
	// Adds is the number of accumulator additions.
	Adds int
	// Shifts is the number of barrel-shift operations.
	Shifts int
}

// add accumulates another stats record.
func (s *Stats) add(o Stats) {
	s.Cycles += o.Cycles
	s.BitANDs += o.BitANDs
	s.Adds += o.Adds
	s.Shifts += o.Shifts
}

// Engine is a bit-serial MAC engine for unsigned operands of a fixed
// precision.
type Engine struct {
	bits     int
	accWidth int
	mask     uint64
	adder    *elec.CLAAdder
	shifter  *elec.BarrelShifterFunc
}

// NewEngine returns an engine for `bits`-wide operands able to
// accumulate at least `terms` products without overflow. bits must be in
// [1, 24] (the paper sweeps 1..32 bits/lane but products of two 24-bit
// operands already need 48-bit accumulators; 24 keeps headroom for the
// term count within uint64).
func NewEngine(bits, terms int) (*Engine, error) {
	if bits < 1 || bits > 24 {
		return nil, fmt.Errorf("bitserial: operand width %d out of range [1,24]", bits)
	}
	if terms < 1 {
		return nil, fmt.Errorf("bitserial: term count must be >= 1")
	}
	accWidth := elec.AccumulatorWidth(bits, terms)
	adder, err := elec.NewCLAAdder(accWidth)
	if err != nil {
		return nil, fmt.Errorf("bitserial: %w", err)
	}
	shifter, err := elec.NewBarrelShifter(accWidth)
	if err != nil {
		return nil, fmt.Errorf("bitserial: %w", err)
	}
	return &Engine{
		bits:     bits,
		accWidth: accWidth,
		mask:     (uint64(1) << uint(bits)) - 1,
		adder:    adder,
		shifter:  shifter,
	}, nil
}

// Bits returns the operand precision.
func (e *Engine) Bits() int { return e.bits }

// AccumulatorWidth returns the accumulator width in bits.
func (e *Engine) AccumulatorWidth() int { return e.accWidth }

// checkOperand validates that v fits in the engine's precision.
func (e *Engine) checkOperand(name string, v uint64) error {
	if v > e.mask {
		return fmt.Errorf("bitserial: %s %d exceeds %d-bit range", name, v, e.bits)
	}
	return nil
}

// Multiply computes neuron*synapse bit-serially: over Bits() cycles, one
// synapse bit (LSB first) gates the full neuron word through an AND
// array; the gated word is barrel-shifted left by the bit position and
// added into the accumulator by the CLA.
func (e *Engine) Multiply(neuron, synapse uint64) (uint64, Stats, error) {
	if err := e.checkOperand("neuron", neuron); err != nil {
		return 0, Stats{}, err
	}
	if err := e.checkOperand("synapse", synapse); err != nil {
		return 0, Stats{}, err
	}
	return e.multiplyUnchecked(neuron, synapse)
}

// multiplyUnchecked is Multiply without the operand-range checks, for
// callers (DotProduct) that have already validated whole vectors up
// front.
func (e *Engine) multiplyUnchecked(neuron, synapse uint64) (uint64, Stats, error) {
	var acc uint64
	var st Stats
	for j := 0; j < e.bits; j++ {
		sbit := (synapse >> uint(j)) & 1
		// AND array: the full neuron word against one synapse bit.
		var gated uint64
		if sbit == 1 {
			gated = neuron
		}
		st.BitANDs += e.bits
		// Left-shift by the bit position, then accumulate.
		shifted := e.shifter.ShiftLeft(gated, j)
		acc, _ = e.adder.Add(acc, shifted, false)
		st.Shifts++
		st.Adds++
		st.Cycles++
	}
	return acc, st, nil
}

// DotProduct computes the inner product of two equal-length vectors of
// unsigned operands bit-serially. In hardware the lanes run in parallel,
// so the cycle count is Bits() per element position, not per lane; the
// returned Stats reflect that (Cycles = len * Bits, lane-parallel).
func (e *Engine) DotProduct(neurons, synapses []uint64) (uint64, Stats, error) {
	if len(neurons) != len(synapses) {
		return 0, Stats{}, fmt.Errorf("bitserial: vector lengths differ (%d vs %d)", len(neurons), len(synapses))
	}
	// Validate both vectors up front so the per-element multiply loop
	// runs unchecked.
	for i := range neurons {
		if err := e.checkOperand("neuron", neurons[i]); err != nil {
			return 0, Stats{}, err
		}
		if err := e.checkOperand("synapse", synapses[i]); err != nil {
			return 0, Stats{}, err
		}
	}
	var acc uint64
	var st Stats
	for i := range neurons {
		p, ps, err := e.multiplyUnchecked(neurons[i], synapses[i])
		if err != nil {
			return 0, Stats{}, err
		}
		// Merge the product into the running sum with one more CLA add.
		acc, _ = e.adder.Add(acc, p, false)
		ps.Adds++
		st.add(ps)
	}
	return acc, st, nil
}

// Window is the full PE computation of the paper's Figure 2a: for each
// filter k, the inner product of every input-neuron lane against the
// filter's synapse lanes, summed over all element positions:
//
//	O_k = sum_j sum_i I[i][j] * S[k][i][j]
//
// I is indexed [lane][element]; S is indexed [filter][lane][element].
// The activation function is *not* applied here — callers feed the raw
// accumulations to an elec.TanhUnit (or identity) as the paper's Figure 3
// pipeline does.
func (e *Engine) Window(inputs [][]uint64, synapses [][][]uint64) ([]uint64, Stats, error) {
	var st Stats
	out := make([]uint64, len(synapses))
	for k, filter := range synapses {
		if len(filter) != len(inputs) {
			return nil, Stats{}, fmt.Errorf("bitserial: filter %d has %d lanes, inputs have %d", k, len(filter), len(inputs))
		}
		var acc uint64
		for lane := range filter {
			v, vs, err := e.DotProduct(inputs[lane], filter[lane])
			if err != nil {
				return nil, Stats{}, fmt.Errorf("bitserial: filter %d lane %d: %w", k, lane, err)
			}
			acc, _ = e.adder.Add(acc, v, false)
			vs.Adds++
			st.add(vs)
		}
		out[k] = acc
	}
	// Lanes run in parallel across filters too: a window's cycle count
	// is elements * bits, not multiplied by lane or filter count.
	if len(synapses) > 0 && len(inputs) > 0 {
		st.Cycles = len(inputs[0]) * e.bits
	}
	return out, st, nil
}

// ReferenceDot is a plain-integer inner product used by tests as an
// independent oracle.
func ReferenceDot(neurons, synapses []uint64) uint64 {
	var acc uint64
	for i := range neurons {
		acc += neurons[i] * synapses[i]
	}
	return acc
}
