package bitserial

import (
	"testing"
	"testing/quick"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(0, 1); err == nil {
		t.Error("bits 0 should error")
	}
	if _, err := NewEngine(25, 1); err == nil {
		t.Error("bits 25 should error")
	}
	if _, err := NewEngine(8, 0); err == nil {
		t.Error("terms 0 should error")
	}
	e, err := NewEngine(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if e.Bits() != 8 {
		t.Errorf("Bits = %d", e.Bits())
	}
	if e.AccumulatorWidth() != 20 { // 16 product bits + log2(16)
		t.Errorf("AccumulatorWidth = %d, want 20", e.AccumulatorWidth())
	}
}

func TestMultiplyPaperExample(t *testing.T) {
	// Section II-B: INL0 element 2 (0010) x SL0 element 6 -> 12; and the
	// OO example operands 6 x 13 = 78.
	e, err := NewEngine(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := e.Multiply(2, 6)
	if err != nil || got != 12 {
		t.Errorf("2*6 = %d, %v; want 12", got, err)
	}
	if st.Cycles != 4 {
		t.Errorf("4-bit multiply should take 4 cycles, took %d", st.Cycles)
	}
	got, _, _ = e.Multiply(6, 13)
	if got != 78 {
		t.Errorf("6*13 = %d, want 78", got)
	}
}

func TestMultiplyMatchesIntegerMultiply(t *testing.T) {
	for _, bits := range []int{1, 2, 4, 8, 12, 16, 24} {
		e, err := NewEngine(bits, 1)
		if err != nil {
			t.Fatal(err)
		}
		mask := (uint64(1) << uint(bits)) - 1
		f := func(a, b uint64) bool {
			a &= mask
			b &= mask
			got, _, err := e.Multiply(a, b)
			return err == nil && got == a*b
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("bits=%d: %v", bits, err)
		}
	}
}

func TestMultiplyRejectsOutOfRange(t *testing.T) {
	e, _ := NewEngine(4, 1)
	if _, _, err := e.Multiply(16, 1); err == nil {
		t.Error("neuron out of range should error")
	}
	if _, _, err := e.Multiply(1, 16); err == nil {
		t.Error("synapse out of range should error")
	}
}

func TestDotProductPaperWindowExample(t *testing.T) {
	// Paper Section II-B: cycle-1 partial sum of INL elements 0 against
	// filter-0 synapse elements 0: 2*6 + 0*1 + 3*2 + 8*3 = 42.
	e, err := NewEngine(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.DotProduct([]uint64{2, 0, 3, 8}, []uint64{6, 1, 2, 3})
	if err != nil || got != 42 {
		t.Errorf("partial sum = %d, %v; want 42", got, err)
	}
}

func TestWindowPaperFullExample(t *testing.T) {
	// The full Section II-B window. The paper prints a final sum of 368,
	// but its own operands give 42 + 55 + 109 + 123 = 329 (the per-cycle
	// partial sums; cycle 1's 42 matches the paper exactly). We assert
	// the arithmetically correct value.
	// INL_i are the input neuron lanes, SL_i the synapse lanes of
	// filter 0; O_0 = sum_j sum_i INL_i[j] * SL_i[j].
	e, err := NewEngine(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]uint64{
		{2, 4, 6, 9}, // INL0
		{0, 1, 3, 4}, // INL1
		{3, 5, 1, 2}, // INL2
		{8, 2, 8, 6}, // INL3
	}
	filter0 := [][]uint64{
		{6, 9, 13, 11}, // SL0
		{1, 2, 1, 2},   // SL1
		{2, 3, 4, 5},   // SL2
		{3, 1, 3, 1},   // SL3
	}
	out, st, err := e.Window(inputs, [][][]uint64{filter0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 329 {
		t.Errorf("window output = %d, want 329", out[0])
	}
	if st.Cycles != 4*4 {
		t.Errorf("window cycles = %d, want 16 (4 elements x 4 bits)", st.Cycles)
	}
}

func TestDotProductMatchesReference(t *testing.T) {
	e, _ := NewEngine(8, 64)
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		n := make([]uint64, len(raw))
		s := make([]uint64, len(raw))
		for i, v := range raw {
			n[i] = uint64(v & 0xFF)
			s[i] = uint64((v >> 8) & 0xFF)
		}
		got, _, err := e.DotProduct(n, s)
		return err == nil && got == ReferenceDot(n, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDotProductLengthMismatch(t *testing.T) {
	e, _ := NewEngine(8, 4)
	if _, _, err := e.DotProduct([]uint64{1}, []uint64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestWindowLaneMismatch(t *testing.T) {
	e, _ := NewEngine(4, 4)
	_, _, err := e.Window([][]uint64{{1}}, [][][]uint64{{{1}, {2}}})
	if err == nil {
		t.Error("filter lane count mismatch should error")
	}
}

func TestWindowMultipleFilters(t *testing.T) {
	e, _ := NewEngine(4, 8)
	inputs := [][]uint64{{1, 2}, {3, 4}}
	filters := [][][]uint64{
		{{1, 1}, {1, 1}}, // O_0 = 1+2+3+4 = 10
		{{2, 0}, {0, 2}}, // O_1 = 2*1 + 2*4 = 10
		{{0, 0}, {0, 0}}, // O_2 = 0
	}
	out, _, err := e.Window(inputs, filters)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{10, 10, 0}
	for k := range want {
		if out[k] != want[k] {
			t.Errorf("filter %d: got %d want %d", k, out[k], want[k])
		}
	}
}

func TestStatsAccumulation(t *testing.T) {
	e, _ := NewEngine(4, 4)
	_, st, err := e.DotProduct([]uint64{3, 5}, []uint64{7, 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two 4-bit multiplies: 2*4 bit-cycles, each with 4-bit AND arrays.
	if st.BitANDs != 2*4*4 {
		t.Errorf("BitANDs = %d, want 32", st.BitANDs)
	}
	if st.Shifts != 8 {
		t.Errorf("Shifts = %d, want 8", st.Shifts)
	}
	// 8 accumulate adds inside multiplies + 2 merge adds.
	if st.Adds != 10 {
		t.Errorf("Adds = %d, want 10", st.Adds)
	}
}
