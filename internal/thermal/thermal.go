// Package thermal models the microring resonators' thermal sensitivity
// and the runtime tuning loop that keeps them on channel — the concern
// the paper raises in Section II-A1 ("due to thermal sensitivity, ring
// heaters are used to ensure that the wavelength drift is avoided")
// alongside its cited mitigations (athermal design, runtime thermal
// optimization).
//
// The model is deliberately simple but physical: silicon's thermo-optic
// coefficient shifts a ring's resonance by ~0.08 nm/K; a WDM grid
// spaces channels ~0.8 nm apart (100 GHz at 1550 nm); a ring is usable
// while its residual detuning stays within a fraction of the channel
// spacing; an integrating controller drives a resistive heater to null
// the drift, paying mW-class power per kelvin of correction.
package thermal

import (
	"fmt"
	"math"

	"pixel/internal/phy"
)

// RingModel holds the thermal constants of one microring.
type RingModel struct {
	// DriftPerKelvin is the resonance shift per kelvin [m/K];
	// ~0.08 nm/K for silicon rings.
	DriftPerKelvin float64
	// ChannelSpacing is the WDM grid pitch [m]; 0.8 nm = 100 GHz.
	ChannelSpacing float64
	// LockFraction is the fraction of the channel spacing within which
	// the ring still switches its channel cleanly.
	LockFraction float64
	// HeaterPowerPerKelvin is the heater power to raise the ring one
	// kelvin [W/K].
	HeaterPowerPerKelvin float64
	// MaxHeaterPower bounds the heater [W].
	MaxHeaterPower float64
}

// DefaultRingModel returns literature-class constants.
func DefaultRingModel() RingModel {
	return RingModel{
		DriftPerKelvin:       0.08 * phy.Nanometer,
		ChannelSpacing:       0.8 * phy.Nanometer,
		LockFraction:         0.25,
		HeaterPowerPerKelvin: 0.25 * phy.Milliwatt,
		MaxHeaterPower:       10 * phy.Milliwatt,
	}
}

// Validate reports an error for non-physical constants.
func (m RingModel) Validate() error {
	switch {
	case m.DriftPerKelvin <= 0 || m.ChannelSpacing <= 0:
		return fmt.Errorf("thermal: drift and spacing must be positive")
	case m.LockFraction <= 0 || m.LockFraction >= 1:
		return fmt.Errorf("thermal: lock fraction %v out of (0,1)", m.LockFraction)
	case m.HeaterPowerPerKelvin <= 0 || m.MaxHeaterPower <= 0:
		return fmt.Errorf("thermal: heater constants must be positive")
	}
	return nil
}

// LockToleranceKelvin returns the ambient error [K] a ring tolerates
// without control before it detunes.
func (m RingModel) LockToleranceKelvin() float64 {
	return m.LockFraction * m.ChannelSpacing / m.DriftPerKelvin
}

// Ring is one thermally-sensitive ring under closed-loop control. The
// heater can only ADD heat, so the ring is fabricated red-shifted
// (Bias kelvin below its channel) and the controller holds it at the
// bias point; ambient swings in either direction are then correctable
// while bias-ambient stays within the heater range.
type Ring struct {
	Model RingModel
	// Bias is the built-in fabrication offset [K] the heater must
	// supply at nominal ambient.
	Bias float64
	// heaterK is the current heater contribution [K].
	heaterK float64
	// gain is the integral gain of the control loop (fraction of the
	// observed error corrected per step).
	gain float64
}

// NewRing returns a controlled ring with the given fabrication bias.
func NewRing(model RingModel, biasKelvin float64) (*Ring, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if biasKelvin < 0 {
		return nil, fmt.Errorf("thermal: bias must be non-negative")
	}
	return &Ring{Model: model, Bias: biasKelvin, heaterK: biasKelvin, gain: 0.5}, nil
}

// DetuningKelvin returns the net temperature error [K] for the given
// ambient offset from nominal: ambient + heater - bias.
func (r *Ring) DetuningKelvin(ambientOffset float64) float64 {
	return ambientOffset + r.heaterK - r.Bias
}

// Detuning returns the resonance error [m] at the given ambient offset.
func (r *Ring) Detuning(ambientOffset float64) float64 {
	return r.DetuningKelvin(ambientOffset) * r.Model.DriftPerKelvin
}

// Locked reports whether the ring is usable at the ambient offset.
func (r *Ring) Locked(ambientOffset float64) bool {
	return math.Abs(r.Detuning(ambientOffset)) <= r.Model.LockFraction*r.Model.ChannelSpacing
}

// HeaterPower returns the current heater power [W].
func (r *Ring) HeaterPower() float64 {
	return r.heaterK * r.Model.HeaterPowerPerKelvin
}

// Step runs one control iteration against the observed ambient offset
// [K] and returns the residual detuning [K]. The controller corrects a
// fraction of the error per step (integral control), clamped to the
// heater's physical range [0, max].
func (r *Ring) Step(ambientOffset float64) float64 {
	err := r.DetuningKelvin(ambientOffset)
	r.heaterK -= r.gain * err
	if r.heaterK < 0 {
		r.heaterK = 0
	}
	if maxK := r.Model.MaxHeaterPower / r.Model.HeaterPowerPerKelvin; r.heaterK > maxK {
		r.heaterK = maxK
	}
	return r.DetuningKelvin(ambientOffset)
}

// LockTime returns the number of control steps to re-lock after an
// ambient step of the given size [K], or an error if the heater range
// cannot compensate it. maxSteps bounds the simulation.
func (r *Ring) LockTime(ambientStep float64, maxSteps int) (int, error) {
	for i := 0; i < maxSteps; i++ {
		if r.Locked(ambientStep) {
			return i, nil
		}
		r.Step(ambientStep)
	}
	if r.Locked(ambientStep) {
		return maxSteps, nil
	}
	return 0, fmt.Errorf(
		"thermal: cannot re-lock after %+.1f K ambient step (heater at %s of %s): outside compensation range",
		ambientStep, phy.FormatPower(r.HeaterPower()), phy.FormatPower(r.Model.MaxHeaterPower))
}

// TrackProfile runs the control loop over a time-varying ambient
// profile (one sample per control step) and returns the fraction of
// steps the ring stayed locked and the peak absolute detuning [K].
// The profile models chip-level workload-driven temperature swings;
// the tuning loop must ride them continuously.
func (r *Ring) TrackProfile(ambient []float64) (lockedFrac, peakDetuneK float64, err error) {
	if len(ambient) == 0 {
		return 0, 0, fmt.Errorf("thermal: empty ambient profile")
	}
	locked := 0
	for _, a := range ambient {
		if r.Locked(a) {
			locked++
		}
		d := math.Abs(r.DetuningKelvin(a))
		if d > peakDetuneK {
			peakDetuneK = d
		}
		r.Step(a)
	}
	return float64(locked) / float64(len(ambient)), peakDetuneK, nil
}

// SineProfile generates a sinusoidal ambient swing: amplitude [K] over
// `period` steps, for n steps total — a standing proxy for periodic
// workload-driven heating.
func SineProfile(amplitude float64, period, n int) []float64 {
	if period < 1 || n < 1 {
		panic("thermal: profile needs positive period and length")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = amplitude * math.Sin(2*math.Pi*float64(i)/float64(period))
	}
	return out
}

// BankTuningPower returns the steady-state tuning power [W] of a bank
// of `rings` rings at the given mean ambient offset [K]: each ring
// holds bias - ambient (clamped at zero; negative offsets need more
// heat, positive less).
func BankTuningPower(model RingModel, rings int, biasKelvin, ambientOffset float64) (float64, error) {
	if err := model.Validate(); err != nil {
		return 0, err
	}
	if rings < 0 {
		return 0, fmt.Errorf("thermal: negative ring count")
	}
	hold := biasKelvin - ambientOffset
	if hold < 0 {
		hold = 0
	}
	per := hold * model.HeaterPowerPerKelvin
	if per > model.MaxHeaterPower {
		return 0, fmt.Errorf("thermal: holding %+.1f K exceeds heater range", hold)
	}
	return float64(rings) * per, nil
}
