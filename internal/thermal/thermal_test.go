package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"pixel/internal/phy"
)

func TestModelValidate(t *testing.T) {
	if err := DefaultRingModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultRingModel()
	bad.LockFraction = 1
	if err := bad.Validate(); err == nil {
		t.Error("lock fraction 1 should fail")
	}
	bad = DefaultRingModel()
	bad.DriftPerKelvin = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero drift should fail")
	}
}

func TestLockToleranceKelvin(t *testing.T) {
	m := DefaultRingModel()
	// 0.25 * 0.8nm / 0.08nm/K = 2.5 K.
	if got := m.LockToleranceKelvin(); math.Abs(got-2.5) > 1e-9 {
		t.Errorf("lock tolerance = %v K, want 2.5", got)
	}
}

func TestRingStartsLockedAtBias(t *testing.T) {
	r, err := NewRing(DefaultRingModel(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Locked(0) {
		t.Error("ring must start locked at nominal ambient")
	}
	if got := r.DetuningKelvin(0); got != 0 {
		t.Errorf("initial detuning = %v K", got)
	}
	// Heater holds the full bias at nominal.
	if got := r.HeaterPower(); math.Abs(got-10*0.25*phy.Milliwatt) > 1e-12 {
		t.Errorf("heater power = %v", got)
	}
}

func TestSmallDriftStaysLockedWithoutControl(t *testing.T) {
	r, _ := NewRing(DefaultRingModel(), 10)
	if !r.Locked(2.0) { // within the 2.5 K tolerance
		t.Error("2 K drift should remain within lock")
	}
	if r.Locked(3.0) {
		t.Error("3 K drift must detune an uncontrolled ring")
	}
}

func TestControllerRelocksAfterHotStep(t *testing.T) {
	r, _ := NewRing(DefaultRingModel(), 10)
	steps, err := r.LockTime(5.0, 100) // chip heats 5 K
	if err != nil {
		t.Fatal(err)
	}
	if steps == 0 || steps > 10 {
		t.Errorf("re-lock took %d steps, want a handful", steps)
	}
	// After re-locking to a hotter ambient the heater supplies less.
	if r.HeaterPower() >= 10*0.25*phy.Milliwatt {
		t.Error("hotter ambient should reduce heater power")
	}
}

func TestControllerRelocksAfterColdStep(t *testing.T) {
	r, _ := NewRing(DefaultRingModel(), 10)
	if _, err := r.LockTime(-5.0, 100); err != nil {
		t.Fatal(err)
	}
	if r.HeaterPower() <= 10*0.25*phy.Milliwatt {
		t.Error("colder ambient should raise heater power")
	}
}

func TestHeaterRangeLimit(t *testing.T) {
	// Max heater 10 mW at 0.25 mW/K = 40 K of authority; bias 10 K.
	r, _ := NewRing(DefaultRingModel(), 10)
	// Cooling by 50 K needs bias+50 = 60 K > 40 K of heater: must fail.
	if _, err := r.LockTime(-50, 200); err == nil {
		t.Error("drift beyond heater authority must be reported")
	}
	// Heating by 50 K needs heater below 0: also uncorrectable.
	r2, _ := NewRing(DefaultRingModel(), 10)
	if _, err := r2.LockTime(50, 200); err == nil {
		t.Error("heating beyond the bias must be reported")
	}
}

func TestControlConvergesProperty(t *testing.T) {
	f := func(raw int8) bool {
		step := float64(raw) / 8 // -16..16 K, within authority
		if step < -25 || step > 9 {
			return true
		}
		r, err := NewRing(DefaultRingModel(), 10)
		if err != nil {
			return false
		}
		_, err = r.LockTime(step, 200)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(DefaultRingModel(), -1); err == nil {
		t.Error("negative bias should error")
	}
	bad := DefaultRingModel()
	bad.MaxHeaterPower = 0
	if _, err := NewRing(bad, 1); err == nil {
		t.Error("invalid model should error")
	}
}

func TestTrackSlowSineStaysLocked(t *testing.T) {
	// A +-8 K swing over 200 control steps is slow enough for the loop
	// to track continuously.
	r, _ := NewRing(DefaultRingModel(), 10)
	frac, peak, err := r.TrackProfile(SineProfile(8, 200, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if frac < 0.99 {
		t.Errorf("locked fraction = %v, want ~1 for a slow swing", frac)
	}
	if peak >= r.Model.LockToleranceKelvin() {
		t.Errorf("peak detuning %v K should stay inside the %v K tolerance", peak, r.Model.LockToleranceKelvin())
	}
}

func TestTrackFastSwingLosesLock(t *testing.T) {
	// The same amplitude swinging every 4 steps outruns the integral
	// loop: lock drops measurably.
	r, _ := NewRing(DefaultRingModel(), 10)
	frac, peak, err := r.TrackProfile(SineProfile(8, 4, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if frac > 0.9 {
		t.Errorf("locked fraction = %v, want visible dropout on a fast swing", frac)
	}
	if peak <= r.Model.LockToleranceKelvin() {
		t.Errorf("peak detuning %v K should exceed tolerance on a fast swing", peak)
	}
}

func TestTrackProfileValidation(t *testing.T) {
	r, _ := NewRing(DefaultRingModel(), 10)
	if _, _, err := r.TrackProfile(nil); err == nil {
		t.Error("empty profile should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("bad profile parameters should panic")
		}
	}()
	SineProfile(1, 0, 10)
}

func TestBankTuningPower(t *testing.T) {
	m := DefaultRingModel()
	p, err := BankTuningPower(m, 128, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 128 rings x 10 K x 0.25 mW/K = 320 mW.
	if math.Abs(p-0.32) > 1e-12 {
		t.Errorf("bank power = %v, want 0.32 W", p)
	}
	// A hotter chip needs less tuning power.
	p2, _ := BankTuningPower(m, 128, 10, 5)
	if p2 >= p {
		t.Error("hotter ambient should cut tuning power")
	}
	// Holding beyond the heater range errors.
	if _, err := BankTuningPower(m, 8, 100, 0); err == nil {
		t.Error("out-of-range hold should error")
	}
	if _, err := BankTuningPower(m, -1, 1, 0); err == nil {
		t.Error("negative ring count should error")
	}
	// Saturated cold side clamps at zero.
	p3, err := BankTuningPower(m, 8, 2, 10)
	if err != nil || p3 != 0 {
		t.Errorf("over-hot bank should need zero power, got %v, %v", p3, err)
	}
}

// TestZeroDriftAmbientHoldsBiasProperty: with the ambient pinned at
// nominal (zero offset), the controller is already at its fixed point
// for ANY valid model and bias — every Step must leave the heater
// exactly at bias, the residual detuning at zero, and the ring locked.
// A controller that drifts under zero stimulus would corrupt every
// Monte-Carlo trial whose sampled excursion is zero.
func TestZeroDriftAmbientHoldsBiasProperty(t *testing.T) {
	f := func(rawBias, rawPPK, rawMax uint8) bool {
		m := DefaultRingModel()
		m.HeaterPowerPerKelvin = (0.05 + float64(rawPPK)/256) * phy.Milliwatt
		m.MaxHeaterPower = (1 + float64(rawMax)/8) * phy.Milliwatt
		bias := float64(rawBias) / 16 // 0..16 K
		if bias > m.MaxHeaterPower/m.HeaterPowerPerKelvin {
			return true // bias outside heater authority: not a valid operating point
		}
		r, err := NewRing(m, bias)
		if err != nil {
			return false
		}
		for i := 0; i < 32; i++ {
			if resid := r.Step(0); resid != 0 {
				return false
			}
			if r.HeaterPower() != bias*m.HeaterPowerPerKelvin {
				return false
			}
		}
		return r.Locked(0) && r.DetuningKelvin(0) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHeaterSaturatesAtMaxPowerProperty: when the ambient drops so far
// that nulling it needs more heat than the heater has, the controller
// must pin the heater exactly at MaxHeaterPower — never beyond, never
// oscillating below — and the residual must equal the physics shortfall
// ambient + maxK - bias. The clamp is what the Monte-Carlo multiply
// path prices as residual detuning.
func TestHeaterSaturatesAtMaxPowerProperty(t *testing.T) {
	f := func(rawCold uint8) bool {
		m := DefaultRingModel()
		bias := 10.0
		maxK := m.MaxHeaterPower / m.HeaterPowerPerKelvin
		// Ambient far enough below nominal that bias - ambient > maxK.
		ambient := -(maxK - bias) - 1 - float64(rawCold)/4
		r, err := NewRing(m, bias)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			r.Step(ambient)
			if r.HeaterPower() > m.MaxHeaterPower+1e-18 {
				return false // heater exceeded its physical range
			}
		}
		if math.Abs(r.HeaterPower()-m.MaxHeaterPower) > 1e-12*m.MaxHeaterPower {
			return false // controller failed to use its full authority
		}
		shortfall := ambient + maxK - bias
		return math.Abs(r.DetuningKelvin(ambient)-shortfall) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestHeaterFloorsAtZeroProperty is the mirror clamp: a hot excursion
// beyond the bias can only be corrected down to heater-off; the
// residual is then ambient - bias exactly.
func TestHeaterFloorsAtZeroProperty(t *testing.T) {
	f := func(rawHot uint8) bool {
		m := DefaultRingModel()
		bias := 10.0
		ambient := bias + 1 + float64(rawHot)/4
		r, err := NewRing(m, bias)
		if err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			r.Step(ambient)
			if r.HeaterPower() < 0 {
				return false
			}
		}
		if r.HeaterPower() != 0 {
			return false
		}
		return math.Abs(r.DetuningKelvin(ambient)-(ambient-bias)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
