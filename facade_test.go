package pixel

import (
	"errors"
	"testing"
)

func TestEvaluatePower(t *testing.T) {
	p, err := EvaluatePower("AlexNet", OO, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if p.DynamicW <= 0 || p.StaticW <= 0 || p.LaserW <= 0 {
		t.Errorf("degenerate power summary %+v", p)
	}
	if p.TotalW != p.DynamicW+p.StaticW {
		t.Error("total = dynamic + static identity violated")
	}
	ee, err := EvaluatePower("AlexNet", EE, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ee.LaserW != 0 {
		t.Error("EE has no laser")
	}
	if ee.TotalW <= p.TotalW {
		t.Error("EE should draw more total power at the headline point")
	}
	if _, err := EvaluatePower("NopeNet", EE, 4, 16); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("unknown network: err = %v, want ErrUnknownNetwork", err)
	}
	if _, err := EvaluatePower("LeNet", EE, 0, 16); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("invalid config: err = %v, want ErrBadPrecision", err)
	}
}

func TestMapToGrid(t *testing.T) {
	elec, err := MapToGrid("LeNet", OO, 4, 8, 4, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	phot, err := MapToGrid("LeNet", OO, 4, 8, 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if elec.PipelinedS > elec.SequentialS {
		t.Error("pipelined makespan cannot exceed sequential")
	}
	if phot.SequentialS >= elec.SequentialS {
		t.Error("photonic weight streaming should shorten the makespan")
	}
	if elec.Utilization <= 0 || elec.Utilization > 1 {
		t.Errorf("utilization = %v", elec.Utilization)
	}
	if _, err := MapToGrid("LeNet", OO, 16, 8, 4, 16, false); !errors.Is(err, ErrBadGrid) {
		t.Error("over-budget wavelength plan should surface ErrBadGrid")
	}
	if _, err := MapToGrid("NopeNet", OO, 4, 8, 4, 4, false); !errors.Is(err, ErrUnknownNetwork) {
		t.Error("unknown network should surface ErrUnknownNetwork")
	}
}

func TestRunAblationsPublic(t *testing.T) {
	rows, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || rows[0].Name != "baseline" {
		t.Errorf("ablation rows wrong: %v", rows)
	}
	for _, r := range rows {
		if r.OOImprovement <= 0 {
			t.Errorf("%s: OO improvement should stay positive", r.Name)
		}
	}
}
