package pixel

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestRobustnessSentinels pins the facade's error contract — the HTTP
// status mapping in internal/server branches on these.
func TestRobustnessSentinels(t *testing.T) {
	good := RobustnessSpec{
		Network: "tiny",
		Design:  OO,
		Sigmas:  []float64{0, 1},
		Trials:  2,
		Seed:    1,
	}
	cases := []struct {
		name string
		mut  func(*RobustnessSpec)
		want error
	}{
		{"unknown network", func(s *RobustnessSpec) { s.Network = "NopeNet" }, ErrUnknownNetwork},
		{"unknown design", func(s *RobustnessSpec) { s.Design = Design(99) }, ErrUnknownDesign},
		{"no trials", func(s *RobustnessSpec) { s.Trials = 0 }, ErrBadSpec},
		{"empty sigmas", func(s *RobustnessSpec) { s.Sigmas = nil }, ErrBadSpec},
		{"negative sigma", func(s *RobustnessSpec) { s.Sigmas = []float64{-1} }, ErrBadSpec},
		{"bad budget", func(s *RobustnessSpec) { s.ErrorBudget = 2 }, ErrBadSpec},
	}
	for _, tc := range cases {
		spec := good
		tc.mut(&spec)
		if _, err := Robustness(spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
}

// TestRobustnessRuns exercises the happy path: a small sweep on the
// tiny network with full yield at σ=0 and a bit-identical rerun at a
// different worker count.
func TestRobustnessRuns(t *testing.T) {
	spec := RobustnessSpec{
		Network: "tiny",
		Design:  OO,
		Sigmas:  []float64{0, 2},
		Trials:  8,
		Seed:    3,
		Workers: 1,
	}
	rep, err := RobustnessContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Design != "OO" || rep.Trials != 8 || len(rep.Points) != 2 || len(rep.Baseline) == 0 {
		t.Fatalf("report shape %+v", rep)
	}
	if rep.Points[0].Yield != 1 {
		t.Errorf("σ=0 yield %g, want 1", rep.Points[0].Yield)
	}
	spec.Workers = 4
	rep2, err := Robustness(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("report differs across worker counts")
	}
	if len(RobustnessNetworks()) == 0 {
		t.Error("no robustness networks advertised")
	}
}
