package pixel

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestRobustnessSentinels pins the facade's error contract — the HTTP
// status mapping in internal/server branches on these.
func TestRobustnessSentinels(t *testing.T) {
	good := RobustnessSpec{
		Network: "tiny",
		Design:  OO,
		Sigmas:  []float64{0, 1},
		Trials:  2,
		Seed:    1,
	}
	cases := []struct {
		name string
		mut  func(*RobustnessSpec)
		want error
	}{
		{"unknown network", func(s *RobustnessSpec) { s.Network = "NopeNet" }, ErrUnknownNetwork},
		{"unknown design", func(s *RobustnessSpec) { s.Design = Design(99) }, ErrUnknownDesign},
		{"no trials", func(s *RobustnessSpec) { s.Trials = 0 }, ErrBadSpec},
		{"empty sigmas", func(s *RobustnessSpec) { s.Sigmas = nil }, ErrBadSpec},
		{"negative sigma", func(s *RobustnessSpec) { s.Sigmas = []float64{-1} }, ErrBadSpec},
		{"bad budget", func(s *RobustnessSpec) { s.ErrorBudget = 2 }, ErrBadSpec},
	}
	for _, tc := range cases {
		spec := good
		tc.mut(&spec)
		if _, err := Robustness(spec); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want errors.Is(%v)", tc.name, err, tc.want)
		}
	}
}

// TestParseProtection pins the CLI selector grammar.
func TestParseProtection(t *testing.T) {
	good := []struct {
		in   string
		want *ProtectionSpec
	}{
		{"", nil},
		{"none", nil},
		{" NONE ", nil},
		{"tmr", &ProtectionSpec{Scheme: "tmr"}},
		{"dmr", &ProtectionSpec{Scheme: "dmr"}},
		{"nmr:5", &ProtectionSpec{Scheme: "nmr", Copies: 5}},
		{"parity", &ProtectionSpec{Scheme: "parity"}},
		{"parity:7", &ProtectionSpec{Scheme: "parity", Retries: 7}},
		{"guardband", &ProtectionSpec{Scheme: "guardband"}},
		{"guardband:16", &ProtectionSpec{Scheme: "guardband", RecalEvery: 16}},
		{" Guardband:16 ", &ProtectionSpec{Scheme: "guardband", RecalEvery: 16}},
	}
	for _, tc := range good {
		got, err := ParseProtection(tc.in)
		if err != nil {
			t.Errorf("ParseProtection(%q): %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseProtection(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	bad := []string{
		"ecc",         // unknown scheme
		"tmr:4",       // tmr takes no parameter
		"dmr:2",       // neither does dmr
		"nmr:1",       // below the copy floor
		"nmr:99",      // above the copy ceiling
		"parity:99",   // above the retry ceiling
		"parity:x",    // not an integer
		"guardband:0", // recal interval must be >= 1
		"nmr:",        // empty parameter
		"tmr:3:extra", // trailing junk lands in the parameter
	}
	for _, in := range bad {
		if spec, err := ParseProtection(in); !errors.Is(err, ErrBadSpec) {
			t.Errorf("ParseProtection(%q) = %+v, %v; want ErrBadSpec", in, spec, err)
		}
	}
}

// TestRobustnessProtected exercises the paired run end to end through
// the facade: protected curve on the same axis, overheads priced above
// 1 — protection is never free — and the same determinism guarantee as
// the unprotected path.
func TestRobustnessProtected(t *testing.T) {
	spec := RobustnessSpec{
		Network:    "tiny",
		Design:     OO,
		Sigmas:     []float64{0, 3},
		Trials:     8,
		Seed:       3,
		Workers:    1,
		Protection: &ProtectionSpec{Scheme: "guardband"},
	}
	rep, err := Robustness(spec)
	if err != nil {
		t.Fatal(err)
	}
	pr := rep.Protection
	if pr == nil {
		t.Fatal("protected spec produced no protection report")
	}
	if pr.Scheme != "guardband" {
		t.Errorf("scheme %q, want guardband", pr.Scheme)
	}
	if len(pr.Points) != len(rep.Points) {
		t.Fatalf("%d protected points vs %d unprotected", len(pr.Points), len(rep.Points))
	}
	if pr.EnergyOverhead <= 1 {
		t.Errorf("energy overhead %g, want > 1 (no free protection)", pr.EnergyOverhead)
	}
	if pr.LatencyOverhead < 1 || pr.AreaOverhead < 1 {
		t.Errorf("latency %g / area %g overheads below 1", pr.LatencyOverhead, pr.AreaOverhead)
	}
	if pr.MaxRetryFactor < 1 {
		t.Errorf("retry factor %g below 1", pr.MaxRetryFactor)
	}
	if pr.MinYield() < rep.MinYield() {
		t.Errorf("protected min yield %g below unprotected %g on the tiny sweep",
			pr.MinYield(), rep.MinYield())
	}
	spec.Workers = 4
	rep2, err := Robustness(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("protected report differs across worker counts")
	}
	// A bad scheme surfaces the spec sentinel through the facade.
	spec.Protection = &ProtectionSpec{Scheme: "ecc"}
	if _, err := Robustness(spec); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown scheme: err = %v, want ErrBadSpec", err)
	}
}

// TestRobustnessRuns exercises the happy path: a small sweep on the
// tiny network with full yield at σ=0 and a bit-identical rerun at a
// different worker count.
func TestRobustnessRuns(t *testing.T) {
	spec := RobustnessSpec{
		Network: "tiny",
		Design:  OO,
		Sigmas:  []float64{0, 2},
		Trials:  8,
		Seed:    3,
		Workers: 1,
	}
	rep, err := RobustnessContext(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Design != "OO" || rep.Trials != 8 || len(rep.Points) != 2 || len(rep.Baseline) == 0 {
		t.Fatalf("report shape %+v", rep)
	}
	if rep.Points[0].Yield != 1 {
		t.Errorf("σ=0 yield %g, want 1", rep.Points[0].Yield)
	}
	spec.Workers = 4
	rep2, err := Robustness(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, rep2) {
		t.Error("report differs across worker counts")
	}
	if len(RobustnessNetworks()) == 0 {
		t.Error("no robustness networks advertised")
	}
}
