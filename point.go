package pixel

import (
	"context"
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/interconnect"
	"pixel/internal/mapper"
	"pixel/internal/phy"
	sweepeng "pixel/internal/sweep"
)

// Point is one design point of the paper's exploration space: a MAC
// design, a lane (wavelength) count and a bits/lane burst width. It is
// the value the evaluation API shares — EvaluateContext, PowerContext,
// AreaContext, MapContext and the sweep engine are all views of a
// Point; the positional-argument forms remain as deprecated thin
// wrappers.
type Point struct {
	Design Design
	Lanes  int
	Bits   int
}

// String renders the point compactly ("OO/L4/B16").
func (p Point) String() string {
	return fmt.Sprintf("%s/L%d/B%d", p.Design, p.Lanes, p.Bits)
}

// Validate reports whether the point names a buildable configuration:
// a known design (ErrUnknownDesign otherwise) with lanes and bits/lane
// in the model's supported ranges (ErrBadPrecision otherwise).
func (p Point) Validate() error {
	ad, err := p.Design.arch()
	if err != nil {
		return err
	}
	if _, err := arch.NewConfig(ad, p.Lanes, p.Bits); err != nil {
		return fmt.Errorf("%w: %v", ErrBadPrecision, err)
	}
	return nil
}

// engineJob converts the point to an engine job, surfacing
// ErrUnknownDesign for designs outside the enum.
func (p Point) engineJob(network string) (sweepeng.Job, error) {
	ad, err := p.Design.arch()
	if err != nil {
		return sweepeng.Job{}, err
	}
	return sweepeng.Job{
		Network: network,
		Point:   sweepeng.Point{Design: ad, Lanes: p.Lanes, Bits: p.Bits},
	}, nil
}

// Grid enumerates the cross product of the axes in the canonical
// deterministic order: design-major, then lanes, then bits — the order
// Sweep results come back in.
func Grid(designs []Design, lanesAxis, bitsAxis []int) []Point {
	out := make([]Point, 0, len(designs)*len(lanesAxis)*len(bitsAxis))
	for _, d := range designs {
		for _, lanes := range lanesAxis {
			for _, bits := range bitsAxis {
				out = append(out, Point{Design: d, Lanes: lanes, Bits: bits})
			}
		}
	}
	return out
}

// Evaluate prices a full inference of the named network at this point,
// through the shared memoized engine.
func (p Point) Evaluate(network string) (Result, error) {
	return EvaluateContext(context.Background(), network, p)
}

// EvaluateContext is Evaluate with cancellation: it returns promptly
// with the context's error once ctx is done.
func EvaluateContext(ctx context.Context, network string, p Point) (Result, error) {
	return defaultEngine.EvaluateContext(ctx, network, p)
}

// resultFromCost converts an engine NetworkCost (possibly shared with
// other callers) into a freshly allocated public Result.
func resultFromCost(network string, p Point, c arch.NetworkCost) Result {
	res := Result{
		Network: network,
		Design:  p.Design,
		Lanes:   p.Lanes,
		Bits:    p.Bits,
		EnergyJ: c.Energy.Total(),
		Breakdown: map[string]float64{
			"mul":   c.Energy.Mul,
			"add":   c.Energy.Add,
			"act":   c.Energy.Act,
			"o/e":   c.Energy.OtoE,
			"comm":  c.Energy.Comm,
			"laser": c.Energy.Laser,
		},
		LatencyS: c.Latency,
		EDP:      c.EDP(),
	}
	for _, lc := range c.Layers {
		res.PerLayer = append(res.PerLayer, LayerResult{
			Name:     lc.Layer,
			EnergyJ:  lc.Energy.Total(),
			LatencyS: lc.Latency,
		})
	}
	return res
}

// Power returns the chip-level power budget of the named network at
// this point.
func (p Point) Power(network string) (PowerSummary, error) {
	net, err := resolveNetwork(network)
	if err != nil {
		return PowerSummary{}, err
	}
	cfg, err := p.config()
	if err != nil {
		return PowerSummary{}, err
	}
	pw, err := arch.Power(net, cfg)
	if err != nil {
		return PowerSummary{}, err
	}
	return PowerSummary{
		Network:  network,
		Design:   p.Design,
		Lanes:    p.Lanes,
		Bits:     p.Bits,
		DynamicW: pw.DynamicW.Total(),
		StaticW:  pw.TotalStaticW(),
		LaserW:   pw.LaserIdleW,
		TotalW:   pw.TotalW(),
	}, nil
}

// Area returns the MAC-unit ensemble area [m^2] at this point.
func (p Point) Area() (float64, error) {
	cfg, err := p.config()
	if err != nil {
		return 0, err
	}
	return arch.Area(cfg).Total(), nil
}

// MapToGrid schedules the named network onto a rows x cols tile grid
// at this point, using photonic weight streaming when photonicWeights
// is set. Unusable grid shapes surface ErrBadGrid.
func (p Point) MapToGrid(network string, rows, cols int, photonicWeights bool) (ScheduleSummary, error) {
	net, err := resolveNetwork(network)
	if err != nil {
		return ScheduleSummary{}, err
	}
	cfg, err := p.config()
	if err != nil {
		return ScheduleSummary{}, err
	}
	grid, err := interconnect.NewGrid(rows, cols, p.Lanes, 10*phy.Gigahertz)
	if err != nil {
		return ScheduleSummary{}, fmt.Errorf("%w: %v", ErrBadGrid, err)
	}
	transport := mapper.ElectricalPreload
	if photonicWeights {
		transport = mapper.PhotonicPreload
	}
	s, err := mapper.MapNetwork(net, grid, cfg, mapper.Options{Transport: transport})
	if err != nil {
		return ScheduleSummary{}, err
	}
	return ScheduleSummary{
		Network:     network,
		Rows:        rows,
		Cols:        cols,
		SequentialS: s.MakespanS,
		PipelinedS:  s.PipelinedMakespanS,
		PreloadJ:    s.PreloadJ,
		Utilization: s.MeanUtilization(),
	}, nil
}

// config builds the point's validated arch configuration through the
// default engine's memo, wrapping range failures with ErrBadPrecision.
func (p Point) config() (arch.Config, error) {
	return defaultEngine.config(p)
}
