package pixel

import "pixel/internal/bitserial"

// eeAdapter wraps the Stripes engine behind the MAC interface.
type eeAdapter struct {
	engine *bitserial.Engine
}

func newEEAdapter(bits, terms int) (*eeAdapter, error) {
	e, err := bitserial.NewEngine(bits, terms)
	if err != nil {
		return nil, err
	}
	return &eeAdapter{engine: e}, nil
}

func (a *eeAdapter) Multiply(x, y uint64) (uint64, error) {
	v, _, err := a.engine.Multiply(x, y)
	return v, err
}

func (a *eeAdapter) Dot(x, y []uint64) (uint64, error) {
	v, _, err := a.engine.DotProduct(x, y)
	return v, err
}
