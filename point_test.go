package pixel

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestPointValidate(t *testing.T) {
	if err := (Point{OO, 4, 16}).Validate(); err != nil {
		t.Errorf("valid point rejected: %v", err)
	}
	if err := (Point{Design(7), 4, 16}).Validate(); !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("unknown design: err = %v, want ErrUnknownDesign", err)
	}
	if err := (Point{EE, 0, 16}).Validate(); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("zero lanes: err = %v, want ErrBadPrecision", err)
	}
	if err := (Point{EE, 4, 65}).Validate(); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("oversized bits: err = %v, want ErrBadPrecision", err)
	}
}

func TestPointString(t *testing.T) {
	if s := (Point{OO, 4, 16}).String(); s != "OO/L4/B16" {
		t.Errorf("String() = %q", s)
	}
	if s := Design(9).String(); !strings.Contains(s, "9") {
		t.Errorf("out-of-enum design String() = %q", s)
	}
}

// TestPointWrappersAgree locks the positional wrappers to the Point
// methods they delegate to.
func TestPointWrappersAgree(t *testing.T) {
	p := Point{OO, 4, 8}

	r1, err := Evaluate("LeNet", OO, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Evaluate("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	if r1.EnergyJ != r2.EnergyJ || r1.LatencyS != r2.LatencyS || r1.EDP != r2.EDP {
		t.Error("Evaluate and Point.Evaluate disagree")
	}

	a1, err := Area(OO, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.Area()
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("Area and Point.Area disagree")
	}

	p1, err := EvaluatePower("LeNet", OO, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := p.Power("LeNet")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("EvaluatePower and Point.Power disagree")
	}

	s1, err := MapToGrid("LeNet", OO, 4, 8, 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.MapToGrid("LeNet", 4, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("MapToGrid and Point.MapToGrid disagree")
	}
}

func TestEvaluateContext(t *testing.T) {
	r, err := EvaluateContext(context.Background(), "LeNet", Point{OE, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.EDP <= 0 {
		t.Errorf("degenerate result %+v", r)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The network and point stay validated eagerly; only the pricing is
	// subject to the context, and a cached hit may still succeed — so
	// probe with a point the cache has never seen.
	if _, err := EvaluateContext(ctx, "LeNet", Point{OE, 64, 61}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled evaluate: err = %v, want context.Canceled", err)
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := Evaluate("NopeNet", EE, 4, 8); !errors.Is(err, ErrUnknownNetwork) {
		t.Errorf("Evaluate unknown network: %v", err)
	}
	if _, err := Evaluate("LeNet", Design(42), 4, 8); !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("Evaluate unknown design: %v", err)
	}
	if _, err := Evaluate("LeNet", EE, 0, 8); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("Evaluate bad lanes: %v", err)
	}
	if _, err := Area(Design(42), 4, 8); !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("Area unknown design: %v", err)
	}
	if _, err := EvaluatePower("LeNet", EE, 4, 99); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("EvaluatePower bad bits: %v", err)
	}
	if _, err := MapToGrid("LeNet", OO, 4, 8, 0, 4, false); !errors.Is(err, ErrBadGrid) {
		t.Errorf("MapToGrid zero rows: %v", err)
	}
	if _, err := MapToGrid("LeNet", OO, 16, 8, 4, 16, false); !errors.Is(err, ErrBadGrid) {
		t.Errorf("MapToGrid over-budget plan: %v", err)
	}
	if _, err := NewMAC(Design(9), 8, 1); !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("NewMAC unknown design: %v", err)
	}
	if _, err := NewMAC(EE, 17, 1); !errors.Is(err, ErrBadPrecision) {
		t.Errorf("NewMAC bad bits: %v", err)
	}
	if _, err := ReadResultsJSON(strings.NewReader(`[{"design":"XX"}]`)); !errors.Is(err, ErrUnknownDesign) {
		t.Errorf("ReadResultsJSON bad design: %v", err)
	}
}

func TestGridEnumeration(t *testing.T) {
	points := Grid(Designs(), []int{2, 4}, []int{8, 16})
	if len(points) != 12 {
		t.Fatalf("grid size = %d, want 12", len(points))
	}
	if points[0] != (Point{EE, 2, 8}) || points[11] != (Point{OO, 4, 16}) {
		t.Errorf("grid order wrong: first %v last %v", points[0], points[11])
	}
}
