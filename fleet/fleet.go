// Package fleet is the public facade over pixel's scale-out
// coordinator (internal/fleet): point it at a set of worker pixeld
// addresses and it serves — or lets you call directly — the same /v1
// surface as a single pixeld, with sweep grids and Monte-Carlo
// robustness runs sharded across the workers and merged back
// byte-identically. See docs/FLEET.md for the full contract and
// `pixeld -coordinator` for the command-line form.
package fleet

import (
	"context"
	"log/slog"
	"net"
	"net/http"
	"time"

	"pixel/api"
	"pixel/internal/fleet"
)

// Options configures a Fleet. Workers is required; zero values take
// the coordinator's serving defaults (see internal/fleet.Options).
type Options struct {
	// Workers are the worker pixeld addresses ("host:port" or full base
	// URLs). Required, at least one.
	Workers []string
	// HTTPClient carries shard requests; nil means http.DefaultClient.
	HTTPClient *http.Client
	// ShardsPerWorker scales the fan-out: a request splits into about
	// healthy-workers x ShardsPerWorker shards.
	ShardsPerWorker int
	// RequestTimeout bounds one synchronous request end to end, shard
	// fan-out included.
	RequestTimeout time.Duration
	// MaxTrials bounds the per-request trial count of a robustness run,
	// mirroring the worker-side cap.
	MaxTrials int
	// MaxJobs, MaxRunningJobs and JobTTL configure the coordinator's
	// job registry, like the worker flags of the same names.
	MaxJobs        int
	MaxRunningJobs int
	JobTTL         time.Duration
	// JobsDir makes coordinator jobs durable: their shard harvest
	// checkpoints there, and a restarted coordinator re-adopts them and
	// re-dispatches only unfinished work. Empty keeps jobs in memory.
	JobsDir string
	// Logger receives structured logs; nil means slog.Default().
	Logger *slog.Logger
}

// Fleet fans pixel API calls across a set of worker pixelds.
type Fleet struct {
	c *fleet.Coordinator
}

// New builds a Fleet over the given workers. Close it when done — the
// health prober runs from construction.
func New(opts Options) (*Fleet, error) {
	c, err := fleet.New(fleet.Options{
		Workers:         opts.Workers,
		HTTPClient:      opts.HTTPClient,
		ShardsPerWorker: opts.ShardsPerWorker,
		RequestTimeout:  opts.RequestTimeout,
		MaxTrials:       opts.MaxTrials,
		MaxJobs:         opts.MaxJobs,
		MaxRunningJobs:  opts.MaxRunningJobs,
		JobTTL:          opts.JobTTL,
		JobsDir:         opts.JobsDir,
		Logger:          opts.Logger,
	})
	if err != nil {
		return nil, err
	}
	return &Fleet{c: c}, nil
}

// Evaluate prices one design point on the point's home worker.
func (f *Fleet) Evaluate(ctx context.Context, req api.EvaluateRequest) (api.Result, error) {
	return f.c.Evaluate(ctx, req)
}

// Sweep evaluates a grid across the fleet and merges the shard
// responses into the payload a single pixeld would have produced.
func (f *Fleet) Sweep(ctx context.Context, req api.SweepRequest) (api.SweepResponse, error) {
	return f.c.Sweep(ctx, req)
}

// Robustness runs a Monte-Carlo variation sweep sharded along the σ
// axis, bit-identical to a single-node run.
func (f *Fleet) Robustness(ctx context.Context, req api.RobustnessRequest) (api.RobustnessResponse, error) {
	return f.c.Robustness(ctx, req)
}

// Map schedules a network onto a tile grid on the request's home
// worker.
func (f *Fleet) Map(ctx context.Context, req api.MapRequest) (api.MapResponse, error) {
	return f.c.Map(ctx, req)
}

// Infer forwards a batch to the network's home worker so fleet traffic
// for one network shares that worker's micro-batcher.
func (f *Fleet) Infer(ctx context.Context, req api.InferRequest) (api.InferResponse, error) {
	return f.c.Infer(ctx, req)
}

// Workers snapshots the fleet roster with each member's health and
// circuit-breaker state.
func (f *Fleet) Workers() []api.FleetWorker { return f.c.Workers() }

// AddWorker admits a worker into the fleet at runtime, rebuilding the
// consistent-hash ring without disturbing in-flight shards.
func (f *Fleet) AddWorker(addr string) error { return f.c.AddWorker(addr) }

// RemoveWorker retires a worker from the fleet; its keys move to ring
// successors for everything planned afterwards.
func (f *Fleet) RemoveWorker(addr string) error { return f.c.RemoveWorker(addr) }

// Handler returns the coordinator's HTTP routing tree — the same /v1
// surface as a worker pixeld.
func (f *Fleet) Handler() http.Handler { return f.c.Handler() }

// Serve runs the coordinator on ln until ctx is cancelled, then drains
// in-flight requests for at most drain.
func (f *Fleet) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	return f.c.Serve(ctx, ln, drain)
}

// Close stops the health prober and cancels running coordinator jobs.
func (f *Fleet) Close() { f.c.Close() }
