package pixel

import (
	"context"
	"fmt"

	"pixel/internal/arch"
	"pixel/internal/montecarlo"
	"pixel/internal/protect"
	sweepeng "pixel/internal/sweep"
)

// ErrSnapshotMismatch reports a checkpoint snapshot that was taken
// under a different spec — restoring it would silently mix two
// experiments, so it is refused. See docs/JOBS.md.
var ErrSnapshotMismatch = montecarlo.ErrSnapshotMismatch

// RobustnessHooks observes a resumable robustness run. Callbacks are
// serialized and fire from worker goroutines; keep them fast.
type RobustnessHooks struct {
	// OnTrial fires after each Monte-Carlo trial with the cumulative
	// completed count (snapshot-restored trials included) and the total.
	OnTrial func(done, total int)
	// OnPoint fires once per σ point as soon as all of its trials have
	// completed — out of axis order in general, since trials complete
	// across a worker pool. prot is non-nil when the spec carries a
	// protection scheme. Points fully restored from a snapshot are
	// announced up front, in axis order.
	OnPoint func(index int, point YieldPoint, prot *ProtectedPoint)
}

// RobustnessJob is a resumable robustness run: the spec plus the slot
// store of completed trials. Snapshot captures the completed work;
// Restore into a job built from the same spec and Run finishes the
// remainder, producing a report byte-identical to an uninterrupted run
// at any worker count (see docs/JOBS.md for why that holds).
//
// A job is single-flight: call Run once. Snapshot and Progress are
// safe concurrently with a running job.
type RobustnessJob struct {
	spec   RobustnessSpec
	mcSpec montecarlo.Spec
	net    montecarlo.Network
	scheme protect.Scheme
	ad     arch.Design
	state  *montecarlo.State
}

// NewRobustnessJob validates the spec and allocates the job's slot
// store. Spec failures surface ErrUnknownNetwork, ErrUnknownDesign or
// ErrBadSpec, exactly like Robustness.
func NewRobustnessJob(spec RobustnessSpec) (*RobustnessJob, error) {
	ad, err := spec.Design.arch()
	if err != nil {
		return nil, err
	}
	net, err := montecarlo.BuildNetwork(spec.Network)
	if err != nil {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownNetwork, spec.Network, montecarlo.Networks())
	}
	scheme, err := spec.Protection.scheme()
	if err != nil {
		return nil, err
	}
	mcSpec := montecarlo.Spec{
		Model:       net.Model,
		Input:       net.Input,
		Design:      ad,
		Bits:        net.Bits,
		Terms:       net.Terms,
		Variation:   montecarlo.DefaultVariationModel(),
		Sigmas:      spec.Sigmas,
		Trials:      spec.Trials,
		Seed:        spec.Seed,
		Workers:     spec.Workers,
		ErrorBudget: spec.ErrorBudget,
		Protection:  scheme,
	}
	if err := mcSpec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	return &RobustnessJob{
		spec:   spec,
		mcSpec: mcSpec,
		net:    net,
		scheme: scheme,
		ad:     ad,
		state:  montecarlo.NewState(mcSpec, spec.Network),
	}, nil
}

// Progress returns completed and total trial counts.
func (j *RobustnessJob) Progress() (done, total int) { return j.state.Progress() }

// Snapshot serializes the completed trials. Safe to call while Run is
// in flight; the snapshot holds a consistent prefix of the work.
func (j *RobustnessJob) Snapshot() ([]byte, error) { return j.state.Snapshot() }

// Restore reinstalls a snapshot taken from a job with the identical
// spec (Workers aside — resuming at a different pool width is legal).
// Foreign snapshots are refused with ErrSnapshotMismatch.
func (j *RobustnessJob) Restore(payload []byte) error { return j.state.Restore(payload) }

// Run executes (or finishes) the sweep. On cancellation the completed
// slots stay in the job, ready to Snapshot.
func (j *RobustnessJob) Run(ctx context.Context, hooks RobustnessHooks) (RobustnessReport, error) {
	rep, err := montecarlo.RunState(ctx, j.mcSpec, j.state, montecarlo.Hooks{
		OnTrial: hooks.OnTrial,
		OnPoint: hooks.OnPoint,
	})
	if err != nil {
		return RobustnessReport{}, err
	}
	out := RobustnessReport{
		Network:  j.spec.Network,
		Design:   rep.Design,
		Trials:   rep.Trials,
		Seed:     rep.Seed,
		Budget:   rep.ErrorBudget,
		Points:   rep.Points,
		Baseline: rep.Baseline,
	}
	if j.scheme != nil {
		pr, err := protectionReport(j.net, j.ad, j.scheme, rep)
		if err != nil {
			return RobustnessReport{}, err
		}
		out.Protection = pr
	}
	return out, nil
}

// SweepJob is a resumable multi-network design-space sweep: the
// flattened (network × point) grid plus the slot store of priced
// cells. Results merge restored and freshly priced cells and are
// byte-identical to an uninterrupted run. See docs/JOBS.md.
//
// A job is single-flight: call Run once. Snapshot and Progress are
// safe concurrently with a running job.
type SweepJob struct {
	engine   *Engine
	networks []string
	points   []Point
	jobs     []sweepeng.Job
	state    *sweepeng.State
}

// NewSweepJob validates the grid against the default engine and
// allocates the job's slot store.
func NewSweepJob(networks []string, points []Point) (*SweepJob, error) {
	return defaultEngine.NewSweepJob(networks, points)
}

// NewSweepJob validates the grid and allocates the slot store; the
// job's evaluations run (and memoize) through this engine.
func (e *Engine) NewSweepJob(networks []string, points []Point) (*SweepJob, error) {
	if len(networks) == 0 || len(points) == 0 {
		return nil, fmt.Errorf("pixel: sweep axes must be non-empty")
	}
	jobs := make([]sweepeng.Job, 0, len(networks)*len(points))
	for _, name := range networks {
		if _, err := e.resolveNetwork(name); err != nil {
			return nil, err
		}
		for _, p := range points {
			job, err := p.engineJob(name)
			if err != nil {
				return nil, fmt.Errorf("pixel: sweep point %s: %w", p, err)
			}
			if _, err := e.config(p); err != nil {
				return nil, fmt.Errorf("pixel: sweep point %s: %w", p, err)
			}
			jobs = append(jobs, job)
		}
	}
	return &SweepJob{
		engine:   e,
		networks: append([]string(nil), networks...),
		points:   append([]Point(nil), points...),
		jobs:     jobs,
		state:    sweepeng.NewState(jobs),
	}, nil
}

// Progress returns priced and total grid-cell counts.
func (j *SweepJob) Progress() (done, total int) { return j.state.Progress() }

// Snapshot serializes the priced cells. Safe to call while Run is in
// flight.
func (j *SweepJob) Snapshot() ([]byte, error) { return j.state.Snapshot() }

// Restore reinstalls a snapshot taken from a job over the identical
// (network × point) grid; anything else is refused with
// sweep.ErrSnapshotMismatch.
func (j *SweepJob) Restore(payload []byte) error { return j.state.Restore(payload) }

// Run executes (or finishes) the sweep. opts may be nil. On
// cancellation the priced cells stay in the job, ready to Snapshot.
func (j *SweepJob) Run(ctx context.Context, opts *SweepOptions) (map[string][]Result, error) {
	ro := opts.runOptions()
	if opts != nil && opts.Cell != nil {
		cell := opts.Cell
		ro.OnJob = func(i int, c arch.NetworkCost) {
			name := j.networks[i/len(j.points)]
			pi := i % len(j.points)
			cell(name, pi, resultFromCost(name, j.points[pi], c))
		}
	}
	costs, err := j.engine.eng.RunState(ctx, j.jobs, j.state, ro)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]Result, len(j.networks))
	for ni, name := range j.networks {
		results := make([]Result, len(j.points))
		for pi, p := range j.points {
			results[pi] = resultFromCost(name, p, costs[ni*len(j.points)+pi])
		}
		out[name] = results
	}
	return out, nil
}
