package pixel_test

import (
	"fmt"
	"log"

	"pixel"
)

// ExampleNewMAC computes the paper's Section II-B operands on the
// all-optical datapath.
func ExampleNewMAC() {
	mac, err := pixel.NewMAC(pixel.OO, 8, 4)
	if err != nil {
		log.Fatal(err)
	}
	p, err := mac.Multiply(6, 13)
	if err != nil {
		log.Fatal(err)
	}
	d, err := mac.DotProduct([]uint64{2, 0, 3, 8}, []uint64{6, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(p, d)
	// Output: 78 42
}

// ExampleMAC_SignedDotProduct shows signed operands riding the
// unsigned optics via offset encoding.
func ExampleMAC_SignedDotProduct() {
	mac, err := pixel.NewMAC(pixel.OE, 6, 3)
	if err != nil {
		log.Fatal(err)
	}
	v, err := mac.SignedDotProduct([]int64{-3, 2, -15}, []int64{7, -8, 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v)
	// Output: -52
}

// ExampleEvaluate prices a full VGG16 inference and reports which
// design wins the energy-delay product.
func ExampleEvaluate() {
	var best pixel.Result
	for _, d := range pixel.Designs() {
		r, err := pixel.Evaluate("VGG16", d, 4, 16)
		if err != nil {
			log.Fatal(err)
		}
		if best.EDP == 0 || r.EDP < best.EDP {
			best = r
		}
	}
	fmt.Println(best.Design)
	// Output: OO
}

// ExampleSweep finds the best design point of a small grid.
func ExampleSweep() {
	results, err := pixel.Sweep("LeNet", pixel.Designs(), []int{4, 8}, []int{8, 16})
	if err != nil {
		log.Fatal(err)
	}
	best, err := pixel.BestEDP(results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s lanes=%d bits=%d\n", best.Design, best.Lanes, best.Bits)
	// Output: OO lanes=8 bits=16
}

// ExampleDesigns lists the three MAC implementations.
func ExampleDesigns() {
	for _, d := range pixel.Designs() {
		fmt.Println(d)
	}
	// Output:
	// EE
	// OE
	// OO
}
