package pixel

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

func jobSpec() RobustnessSpec {
	return RobustnessSpec{
		Network: "tiny",
		Design:  OO,
		Sigmas:  []float64{0, 1, 3},
		Trials:  8,
		Seed:    11,
		Workers: 2,
	}
}

// TestRobustnessJobResume is the facade-level crash-resume property:
// interrupt a job mid-run, snapshot it, restore into a fresh job with
// the same spec, finish, and the report is byte-identical to the
// one-shot Robustness call.
func TestRobustnessJobResume(t *testing.T) {
	spec := jobSpec()
	straight, err := Robustness(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(straight)
	if err != nil {
		t.Fatal(err)
	}

	job, err := NewRobustnessJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = job.Run(ctx, RobustnessHooks{
		OnTrial: func(done, total int) {
			if done >= 7 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	done, total := job.Progress()
	if done == 0 || done >= total {
		t.Fatalf("interrupted at %d/%d; need a strict non-empty prefix", done, total)
	}
	snap, err := job.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	spec.Workers = 4 // resuming at a different pool width is legal
	resumed, err := NewRobustnessJob(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	var points int
	rep, err := resumed.Run(context.Background(), RobustnessHooks{
		OnPoint: func(i int, p YieldPoint, prot *ProtectedPoint) { points++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if points != len(spec.Sigmas) {
		t.Fatalf("OnPoint announced %d points, want %d", points, len(spec.Sigmas))
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed report differs:\n%s\nwant\n%s", got, want)
	}
}

// TestRobustnessJobRejectsForeignSnapshot: snapshots are pinned to the
// spec (network included) and refuse to cross experiments.
func TestRobustnessJobRejectsForeignSnapshot(t *testing.T) {
	job, err := NewRobustnessJob(jobSpec())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := job.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := jobSpec()
	other.Seed++
	foreign, err := NewRobustnessJob(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := foreign.Restore(snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("foreign restore: err = %v, want ErrSnapshotMismatch", err)
	}
}

// TestSweepJobResume: the sweep job resumes to the same results
// SweepNetworks produces, without re-pricing restored cells.
func TestSweepJobResume(t *testing.T) {
	networks := []string{"LeNet"}
	points := Grid([]Design{EE, OO}, []int{2, 4}, []int{4, 8})
	want, err := NewEngine(EngineOptions{}).SweepNetworks(context.Background(), networks, points, nil)
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine(EngineOptions{})
	job, err := eng.NewSweepJob(networks, points)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = job.Run(ctx, &SweepOptions{Progress: func(done, total int) {
		if done >= 3 {
			cancel()
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sweep: err = %v, want context.Canceled", err)
	}
	done, total := job.Progress()
	if done == 0 || done >= total {
		t.Fatalf("interrupted at %d/%d; need a strict non-empty prefix", done, total)
	}
	snap, err := job.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cold := NewEngine(EngineOptions{})
	resumed, err := cold.NewSweepJob(networks, points)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got, err := resumed.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls := cold.CostCalls(); calls != int64(total-done) {
		t.Fatalf("resume priced %d cells, want %d", calls, total-done)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed sweep differs:\ngot  %+v\nwant %+v", got, want)
	}
}
