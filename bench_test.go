package pixel_test

// One benchmark per published artifact of the paper's evaluation. Each
// bench regenerates the artifact's full data series (the same rows the
// corresponding table/figure reports), so `go test -bench=.` both
// exercises the model end-to-end and gives the per-artifact
// regeneration cost. Run `cmd/pixelsim -exp <id>` to see the rows.
//
// (External test package so the serving benchmarks can import
// internal/server, which itself imports pixel.)

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"pixel"
	"pixel/internal/arch"
	"pixel/internal/bitserial"
	"pixel/internal/cnn"
	"pixel/internal/eval"
	"pixel/internal/montecarlo"
	"pixel/internal/omac"
	"pixel/internal/optsim"
	"pixel/internal/qnn"
	"pixel/internal/server"
	sweepeng "pixel/internal/sweep"
	"pixel/internal/tensor"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := eval.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (VGG16 per-layer op counts).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig4 regenerates Figure 4 (single-MAC energy/bit sweep).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (per-component energy, 3 CNNs).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (area vs lanes).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (normalized energy, 6 CNNs).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (geomean latency sweep).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (ZFNet per-layer latency).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (normalized EDP, 6 CNNs).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable2 regenerates Table II (component breakdown).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// --- Sweep-engine benchmarks: the multi-core grid sweep behind the
// design-space figures, engine vs the seed's serial loop.

// Sweep grid shared by the engine/serial comparison: all designs over
// the paper's lanes and bits axes (48 points).
var (
	benchSweepLanes = []int{2, 4, 8, 16}
	benchSweepBits  = []int{4, 8, 16, 32}
)

// BenchmarkSweepSerial reproduces the seed's Sweep: a serial triple
// loop that re-resolves the network and rebuilds the configuration and
// cost model from scratch at every (design, lanes, bits) point.
func BenchmarkSweepSerial(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, d := range arch.Designs() {
			for _, lanes := range benchSweepLanes {
				for _, bits := range benchSweepBits {
					net, err := cnn.ByName("AlexNet")
					if err != nil {
						b.Fatal(err)
					}
					cfg, err := arch.NewConfig(d, lanes, bits)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := arch.CostNetwork(net, cfg); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

// BenchmarkSweepCold runs the same grid through a fresh engine every
// iteration: worker-pool fan-out plus shared-work dedup, no result
// reuse across iterations. This is the first-sweep cost.
func BenchmarkSweepCold(b *testing.B) {
	jobs := make([]sweepeng.Job, 0, 48)
	for _, p := range sweepeng.Grid(arch.Designs(), benchSweepLanes, benchSweepBits) {
		jobs = append(jobs, sweepeng.Job{Network: "AlexNet", Point: p})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := sweepeng.New(sweepeng.Options{})
		if _, err := e.Run(context.Background(), jobs, sweepeng.RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep runs the public engine-backed Sweep in steady state:
// the shared engine's LRU holds the grid after the first iteration, so
// this is the repeat-sweep cost the eval figures and long-running
// services see.
func BenchmarkSweep(b *testing.B) {
	if _, err := pixel.Sweep("AlexNet", pixel.Designs(), benchSweepLanes, benchSweepBits); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pixel.Sweep("AlexNet", pixel.Designs(), benchSweepLanes, benchSweepBits); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Robustness benchmarks: the Monte-Carlo yield sweep with and
// without fault mitigation. The protected variants run every trial
// twice (unprotected + protected, common random numbers), so their
// cost over "nominal" is the price of the paired curve; the scheme
// overhead factors themselves are recorded in BENCH_robustness.json.

func benchRobustness(b *testing.B, prot *pixel.ProtectionSpec) {
	b.Helper()
	spec := pixel.RobustnessSpec{
		Network:    "lenet",
		Design:     pixel.OO,
		Sigmas:     []float64{2},
		Trials:     4,
		Seed:       1,
		Protection: prot,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := pixel.Robustness(spec)
		if err != nil {
			b.Fatal(err)
		}
		if prot != nil && rep.Protection == nil {
			b.Fatal("protected spec produced no protection report")
		}
	}
}

// BenchmarkRobustness measures the LeNet OO yield sweep (4 trials at
// σ=2) nominal and under each mitigation scheme.
func BenchmarkRobustness(b *testing.B) {
	b.Run("nominal", func(b *testing.B) { benchRobustness(b, nil) })
	b.Run("tmr", func(b *testing.B) { benchRobustness(b, &pixel.ProtectionSpec{Scheme: "tmr"}) })
	b.Run("parity", func(b *testing.B) { benchRobustness(b, &pixel.ProtectionSpec{Scheme: "parity"}) })
	b.Run("guardband", func(b *testing.B) { benchRobustness(b, &pixel.ProtectionSpec{Scheme: "guardband"}) })
}

// --- Serving benchmarks: the HTTP overhead pixeld layers on top of
// the engine (routing, JSON, coalescing, admission, metrics).

func benchServer() *httptest.Server {
	srv := server.New(server.Config{
		Engine: pixel.NewEngine(pixel.EngineOptions{}),
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	return httptest.NewServer(srv.Handler())
}

func benchPost(b *testing.B, client *http.Client, url string) {
	b.Helper()
	resp, err := client.Post(url, "application/json",
		strings.NewReader(`{"network":"AlexNet","design":"OO","lanes":4,"bits":16}`))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkServerEvaluate measures one /v1/evaluate round trip: "warm"
// is the steady-state path (result LRU hit, the serving overhead on
// top of the ~55µs cached engine path); "cold" includes the first
// pricing of the point on a fresh engine.
func BenchmarkServerEvaluate(b *testing.B) {
	b.Run("warm", func(b *testing.B) {
		ts := benchServer()
		defer ts.Close()
		client := ts.Client()
		benchPost(b, client, ts.URL+"/v1/evaluate") // prime the LRU
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			benchPost(b, client, ts.URL+"/v1/evaluate")
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			ts := benchServer()
			client := ts.Client()
			b.StartTimer()
			benchPost(b, client, ts.URL+"/v1/evaluate")
			b.StopTimer()
			ts.Close()
			b.StartTimer()
		}
	})
}

// --- Inference-serving benchmarks: the batched bit-sliced pipeline
// behind /v1/infer, engine-level and over HTTP. Results are recorded
// in BENCH_serving.json.

// benchInferImages builds deterministic in-range images for a demo
// network.
func benchInferImages(tb testing.TB, network string, n int) [][]int64 {
	tb.Helper()
	shape, err := pixel.InferNetworkShape(network)
	if err != nil {
		tb.Fatal(err)
	}
	imgs := make([][]int64, n)
	for k := range imgs {
		img := make([]int64, shape.H*shape.W*shape.C)
		for i := range img {
			img[i] = int64((i*7 + k*13) % int(shape.MaxValue+1))
		}
		imgs[k] = img
	}
	return imgs
}

// seqStripesDotter adapts the word-level Stripes engine's DotProduct
// to qnn.Dotter — the pre-batching single-image serving path, one
// window x one filter at a time.
type seqStripesDotter struct{ e *bitserial.FastEngine }

func (s seqStripesDotter) DotProduct(a, bb []uint64) (uint64, error) {
	v, _, err := s.e.DotProduct(a, bb)
	return v, err
}

// BenchmarkInferLeNet compares one 64-image batched pass (the
// /v1/infer path: RunBatch on the lane-parallel BatchedStripes engine,
// pooled scratch, weights packed once) against 64 per-image runs of
// the pre-batching pipeline (Model.RunContext on the word-level
// FastEngine) — the engine-level gain micro-batching buys the serving
// path. Both report images/sec; outputs are proven identical in
// TestRunBatchEquivalence.
func BenchmarkInferLeNet(b *testing.B) {
	imgs := benchInferImages(b, "lenet", 64)
	net, err := montecarlo.BuildNetwork("lenet")
	if err != nil {
		b.Fatal(err)
	}
	ins := make([]*tensor.Tensor, len(imgs))
	for k, img := range imgs {
		in := tensor.New(net.Input.H, net.Input.W, net.Input.C)
		copy(in.Data, img)
		ins[k] = in
	}
	b.Run("sequential64", func(b *testing.B) {
		fast, err := bitserial.NewFastEngine(net.Bits, net.Terms)
		if err != nil {
			b.Fatal(err)
		}
		d := seqStripesDotter{fast}
		if _, err := net.Model.RunContext(context.Background(), ins[0], d, qnn.RunOptions{}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, in := range ins {
				if _, err := net.Model.RunContext(context.Background(), in, d, qnn.RunOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(ins))*float64(b.N)/b.Elapsed().Seconds(), "images/s")
	})
	b.Run("batch64", func(b *testing.B) {
		if _, err := pixel.Infer(pixel.InferSpec{Network: "lenet", Images: imgs}); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pixel.Infer(pixel.InferSpec{Network: "lenet", Images: imgs}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(imgs))*float64(b.N)/b.Elapsed().Seconds(), "images/s")
	})
}

// BenchmarkServerInfer measures /v1/infer under concurrent
// single-image load with micro-batching on (64-image batches, 2ms
// window): end-to-end request latency (p99 reported) and served
// images/sec, the figures a capacity plan needs.
func BenchmarkServerInfer(b *testing.B) {
	srv := server.New(server.Config{
		Engine:      pixel.NewEngine(pixel.EngineOptions{}),
		Infer:       server.PixelInfer{},
		BatchSize:   64,
		BatchWindow: 2 * time.Millisecond,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	img := benchInferImages(b, "lenet", 1)[0]
	body, err := json.Marshal(map[string]any{"network": "lenet", "images": [][]int64{img}})
	if err != nil {
		b.Fatal(err)
	}
	post := func(client *http.Client) time.Duration {
		start := time.Now()
		resp, err := client.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		return time.Since(start)
	}
	post(ts.Client()) // warm the model cache

	var mu sync.Mutex
	var lat []time.Duration
	b.SetParallelism(8) // 8 concurrent clients per GOMAXPROCS
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		client := ts.Client()
		for pb.Next() {
			d := post(client)
			mu.Lock()
			lat = append(lat, d)
			mu.Unlock()
		}
	})
	b.StopTimer()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		b.ReportMetric(float64(lat[len(lat)*99/100].Microseconds())/1000, "p99-ms")
		b.ReportMetric(float64(len(lat))/b.Elapsed().Seconds(), "images/s")
	}
}

// --- Microbenchmarks of the simulator substrates, for profiling the
// pieces the artifact benches compose.

// BenchmarkCostNetworkVGG16 prices one full VGG16 inference (the unit of
// work behind Figures 5/7/8/10).
func BenchmarkCostNetworkVGG16(b *testing.B) {
	cfg := arch.MustConfig(arch.OO, 4, 16)
	net := cnn.VGG16()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arch.CostNetwork(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalOEMultiply runs one 8-bit multiply through the
// simulated hybrid optical datapath.
func BenchmarkFunctionalOEMultiply(b *testing.B) {
	u, err := omac.NewOEUnit(omac.DefaultConfig(4, 8), 1)
	if err != nil {
		b.Fatal(err)
	}
	led := optsim.NewLedger()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := u.Multiply(uint64(i)&255, uint64(i>>8)&255, led); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations re-runs the six-CNN evaluation under every
// calibration ablation (the design-choice sensitivity study).
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arch.RunAblations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalOOMultiply runs one 8-bit multiply through the
// simulated all-optical datapath (MRR AND + cascaded-MZI accumulate).
func BenchmarkFunctionalOOMultiply(b *testing.B) {
	u, err := omac.NewOOUnit(omac.DefaultConfig(4, 8), 1)
	if err != nil {
		b.Fatal(err)
	}
	led := optsim.NewLedger()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := u.Multiply(uint64(i)&255, uint64(i>>8)&255, led); err != nil {
			b.Fatal(err)
		}
	}
}
