package pixel

// One benchmark per published artifact of the paper's evaluation. Each
// bench regenerates the artifact's full data series (the same rows the
// corresponding table/figure reports), so `go test -bench=.` both
// exercises the model end-to-end and gives the per-artifact
// regeneration cost. Run `cmd/pixelsim -exp <id>` to see the rows.

import (
	"io"
	"testing"

	"pixel/internal/arch"
	"pixel/internal/cnn"
	"pixel/internal/eval"
	"pixel/internal/omac"
	"pixel/internal/optsim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := eval.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if err := tab.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates Table I (VGG16 per-layer op counts).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig4 regenerates Figure 4 (single-MAC energy/bit sweep).
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (per-component energy, 3 CNNs).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (area vs lanes).
func BenchmarkFig6(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (normalized energy, 6 CNNs).
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (geomean latency sweep).
func BenchmarkFig8(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (ZFNet per-layer latency).
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (normalized EDP, 6 CNNs).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable2 regenerates Table II (component breakdown).
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// --- Microbenchmarks of the simulator substrates, for profiling the
// pieces the artifact benches compose.

// BenchmarkCostNetworkVGG16 prices one full VGG16 inference (the unit of
// work behind Figures 5/7/8/10).
func BenchmarkCostNetworkVGG16(b *testing.B) {
	cfg := arch.MustConfig(arch.OO, 4, 16)
	net := cnn.VGG16()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arch.CostNetwork(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalOEMultiply runs one 8-bit multiply through the
// simulated hybrid optical datapath.
func BenchmarkFunctionalOEMultiply(b *testing.B) {
	u, err := omac.NewOEUnit(omac.DefaultConfig(4, 8), 1)
	if err != nil {
		b.Fatal(err)
	}
	led := optsim.NewLedger()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := u.Multiply(uint64(i)&255, uint64(i>>8)&255, led); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations re-runs the six-CNN evaluation under every
// calibration ablation (the design-choice sensitivity study).
func BenchmarkAblations(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := arch.RunAblations(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalOOMultiply runs one 8-bit multiply through the
// simulated all-optical datapath (MRR AND + cascaded-MZI accumulate).
func BenchmarkFunctionalOOMultiply(b *testing.B) {
	u, err := omac.NewOOUnit(omac.DefaultConfig(4, 8), 1)
	if err != nil {
		b.Fatal(err)
	}
	led := optsim.NewLedger()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := u.Multiply(uint64(i)&255, uint64(i>>8)&255, led); err != nil {
			b.Fatal(err)
		}
	}
}
