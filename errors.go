package pixel

import "errors"

// Sentinel errors of the public API. Every failure returned by this
// package that stems from one of these causes wraps the corresponding
// sentinel with context, so callers can branch with errors.Is instead
// of matching message strings:
//
//	if _, err := pixel.Evaluate(name, d, lanes, bits); errors.Is(err, pixel.ErrUnknownNetwork) {
//	    // prompt for a valid network
//	}
var (
	// ErrUnknownNetwork: the network name is not in the zoo (see
	// Networks).
	ErrUnknownNetwork = errors.New("pixel: unknown network")
	// ErrUnknownDesign: the Design value is none of EE, OE, OO.
	ErrUnknownDesign = errors.New("pixel: unknown design")
	// ErrBadPrecision: a lanes or bits/lane value is outside the
	// model's supported range.
	ErrBadPrecision = errors.New("pixel: bad precision")
	// ErrBadGrid: a tile-grid shape is unusable (non-positive extents
	// or an over-budget wavelength plan).
	ErrBadGrid = errors.New("pixel: bad grid")
	// ErrBadSpec: a request spec (e.g. a Monte-Carlo robustness sweep)
	// is malformed — non-positive trials, an empty or negative σ axis,
	// an out-of-range error budget, or a non-physical variation model.
	ErrBadSpec = errors.New("pixel: bad spec")
)
